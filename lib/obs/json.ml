type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* nan and +/-inf are not representable in JSON *)
    if Float.is_finite f then Buffer.add_string buf (float_literal f)
    else Buffer.add_string buf "null"
  | Str s -> Buffer.add_string buf (escape s)
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    sep ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          sep ()
        end;
        pad (level + 1);
        write buf ~indent ~level:(level + 1) item)
      items;
    sep ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    sep ();
    List.iteri
      (fun i (name, item) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          sep ()
        end;
        pad (level + 1);
        Buffer.add_string buf (escape name);
        Buffer.add_string buf (if indent then ": " else ":");
        write buf ~indent ~level:(level + 1) item)
      fields;
    sep ();
    pad level;
    Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 1024 in
  write buf ~indent ~level:0 v;
  Buffer.contents buf

let to_string v = render ~indent:false v
let to_string_pretty v = render ~indent:true v

(* ------------------------------------------------------------------ *)
(* Parsing. *)

exception Parse_error of int * string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> error (Printf.sprintf "expected %C, found %C" c d)
    | None -> error (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let utf8_of_code buf code =
    (* No surrogate-pair recombination: lone escapes map directly. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      let c = input.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if !pos >= n then error "unterminated escape";
         let e = input.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 > n then error "truncated \\u escape";
           let hex = String.sub input !pos 4 in
           pos := !pos + 4;
           (match int_of_string_opt ("0x" ^ hex) with
            | Some code -> utf8_of_code buf code
            | None -> error (Printf.sprintf "invalid \\u escape %S" hex))
         | e -> error (Printf.sprintf "invalid escape \\%C" e));
        go ()
      | c when Char.code c < 0x20 -> error "unescaped control character in string"
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_number_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_number_char input.[!pos] do
      advance ()
    done;
    let text = String.sub input start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None ->
      (match float_of_string_opt text with
       | Some f -> Float f
       | None -> error (Printf.sprintf "invalid number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let item = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (item :: acc)
          | Some ']' ->
            advance ();
            List.rev (item :: acc)
          | _ -> error "expected ',' or ']' in array"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let name = parse_string () in
          skip_ws ();
          expect ':';
          (name, parse_value ())
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> error "expected ',' or '}' in object"
        in
        Obj (fields [])
      end
    | Some c -> if is_number_start c then parse_number () else error (Printf.sprintf "unexpected %C" c)
  and is_number_start = function '0' .. '9' | '-' -> true | _ -> false in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing bytes after JSON value";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_list = function List items -> Some items | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

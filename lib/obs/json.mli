(** Minimal JSON values: enough to emit the trace/bench artifacts with
    correct escaping and to parse them back for validation, without
    pulling a JSON dependency into the dependency-free obs layer. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace).  Non-finite floats
    render as [null] — JSON has no representation for them. *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for artifacts meant to be read. *)

val escape : string -> string
(** The quoted, escaped form of a string literal. *)

val parse : string -> (t, string) result
(** Strict recursive-descent parser for the subset this module emits
    (full JSON minus surrogate-pair [\uXXXX] handling: lone escapes map
    to UTF-8 directly).  Errors carry a byte offset. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)

val to_list : t -> t list option
val to_int : t -> int option
val to_float : t -> float option
(** [Int] coerces to float. *)

val to_str : t -> string option

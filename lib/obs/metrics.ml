let recording_flag = ref false

let recording () = !recording_flag
let set_recording flag = recording_flag := flag

(* Log-scale buckets: 4 per octave.  Bucket 0 is the underflow bucket
   (zero and negative observations); bucket [i >= 1] covers values whose
   [4 * log2 v] rounds to [i - bias]. *)
let buckets = 296
let bias = 121 (* v = 1e-9 -> 4 * log2 v ~ -119.6 -> bucket 1 *)

let bucket_of v =
  if not (Float.is_finite v) || v <= 0.0 then 0
  else
    let i = int_of_float (Float.round (4.0 *. Float.log2 v)) + bias in
    if i < 1 then 1 else if i >= buckets then buckets - 1 else i

(* Geometric representative of a bucket (its center in log space). *)
let bucket_value i = if i = 0 then 0.0 else Float.pow 2.0 (float_of_int (i - bias) /. 4.0)

type counter = { mutable c_value : int }
type gauge = { mutable g_value : float }

type histogram = {
  counts : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 32

let intern name make describe =
  match Hashtbl.find_opt registry name with
  | Some m -> describe m
  | None ->
    let fresh = make () in
    Hashtbl.add registry name fresh;
    describe fresh

let counter name =
  intern name
    (fun () -> Counter { c_value = 0 })
    (function
      | Counter c -> c
      | _ -> invalid_arg (Printf.sprintf "Metrics.counter: %S is registered as another kind" name))

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let counter_value c = c.c_value

let gauge name =
  intern name
    (fun () -> Gauge { g_value = 0.0 })
    (function
      | Gauge g -> g
      | _ -> invalid_arg (Printf.sprintf "Metrics.gauge: %S is registered as another kind" name))

let set_gauge g v = g.g_value <- v
let gauge_value g = g.g_value

let histogram name =
  intern name
    (fun () ->
      Histogram
        {
          counts = Array.make buckets 0;
          h_count = 0;
          h_sum = 0.0;
          h_min = Float.infinity;
          h_max = Float.neg_infinity;
        })
    (function
      | Histogram h -> h
      | _ ->
        invalid_arg (Printf.sprintf "Metrics.histogram: %S is registered as another kind" name))

(* A fresh unregistered cell — never visible to the registry, so a
   recorder (one per loadgen worker, say) can own it without
   synchronisation and fold it into a shared histogram afterwards. *)
let private_histogram () =
  {
    counts = Array.make buckets 0;
    h_count = 0;
    h_sum = 0.0;
    h_min = Float.infinity;
    h_max = Float.neg_infinity;
  }

let observe h v =
  let i = bucket_of v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum
let histogram_min h = if h.h_count = 0 then 0.0 else h.h_min
let histogram_max h = if h.h_count = 0 then 0.0 else h.h_max

(* Bucket-wise addition: because every observation lands in exactly one
   bucket, merging per-recorder histograms is exact — the merged counts,
   sum, extrema, and therefore every quantile estimate equal what a
   single recorder seeing all the samples would report. *)
let merge_into ~into src =
  Array.iteri (fun i n -> if n <> 0 then into.counts.(i) <- into.counts.(i) + n) src.counts;
  into.h_count <- into.h_count + src.h_count;
  into.h_sum <- into.h_sum +. src.h_sum;
  if src.h_count > 0 then begin
    if src.h_min < into.h_min then into.h_min <- src.h_min;
    if src.h_max > into.h_max then into.h_max <- src.h_max
  end

let quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let target =
      let t = int_of_float (Float.round (q *. float_of_int h.h_count)) in
      if t < 1 then 1 else if t > h.h_count then h.h_count else t
    in
    let rec walk i seen =
      let seen = seen + h.counts.(i) in
      if seen >= target || i = buckets - 1 then i else walk (i + 1) seen
    in
    let i = walk 0 0 in
    (* Clamp the bucket estimate to the observed range so single-sample
       and extreme-quantile answers stay plausible. *)
    Float.min h.h_max (Float.max h.h_min (bucket_value i))
  end

let percentiles h = (quantile h 0.5, quantile h 0.9, quantile h 0.99)

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.0
      | Histogram h ->
        Array.fill h.counts 0 buckets 0;
        h.h_count <- 0;
        h.h_sum <- 0.0;
        h.h_min <- Float.infinity;
        h.h_max <- Float.neg_infinity)
    registry

let sorted_metrics () =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let histogram_json h =
  let p50, p90, p99 = percentiles h in
  Json.Obj
    [
      ("count", Json.Int h.h_count);
      ("sum", Json.Float h.h_sum);
      ("min", Json.Float (if h.h_count = 0 then 0.0 else h.h_min));
      ("max", Json.Float (if h.h_count = 0 then 0.0 else h.h_max));
      ("p50", Json.Float p50);
      ("p90", Json.Float p90);
      ("p99", Json.Float p99);
    ]

let snapshot () =
  Json.Obj
    (List.map
       (fun (name, m) ->
         match m with
         | Counter c -> (name, Json.Int c.c_value)
         | Gauge g -> (name, Json.Float g.g_value)
         | Histogram h -> (name, histogram_json h))
       (sorted_metrics ()))

let render () =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c ->
        if c.c_value <> 0 then Buffer.add_string buf (Printf.sprintf "%-40s %d\n" name c.c_value)
      | Gauge g ->
        if g.g_value <> 0.0 then
          Buffer.add_string buf (Printf.sprintf "%-40s %g\n" name g.g_value)
      | Histogram h ->
        if h.h_count > 0 then begin
          let p50, p90, p99 = percentiles h in
          Buffer.add_string buf
            (Printf.sprintf "%-40s n=%d sum=%g min=%g p50=%g p90=%g p99=%g max=%g\n" name
               h.h_count h.h_sum h.h_min p50 p90 p99 h.h_max)
        end)
    (sorted_metrics ());
  Buffer.contents buf

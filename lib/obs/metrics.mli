(** Process-wide metrics registry: counters, gauges, and log-scale
    histograms with quantile estimates.

    Handles are interned by name, so any layer can say
    [Metrics.counter "transcript.messages"] and get the same cell.
    Recording is gated by {!set_recording} (default off) with the same
    null-guard discipline as the tracer: a disabled registry costs one
    boolean load per call site. *)

val recording : unit -> bool
val set_recording : bool -> unit

type counter

val counter : string -> counter
(** Interned by name; repeated calls return the same counter. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

type histogram
(** Log-scale buckets (4 per octave, covering ~1e-9 .. 1e12 with an
    underflow bucket for zero/negative observations), so a quantile
    estimate is within one bucket — a factor of [2^(1/4)] — of exact. *)

val histogram : string -> histogram

val private_histogram : unit -> histogram
(** A fresh cell outside the registry: never interned, never reset by
    {!reset}, invisible to {!snapshot}.  Give one to each concurrent
    recorder (a loadgen worker, a worker domain) so the hot observe path
    needs no synchronisation, then fold them together with
    {!merge_into}. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_min : histogram -> float
val histogram_max : histogram -> float
(** Observed extrema; [0.0] on an empty histogram. *)

val merge_into : into:histogram -> histogram -> unit
(** Bucket-wise addition of [src] into [into] (count, sum, and extrema
    included).  Exact: quantiles of the merged histogram equal those of a
    single histogram that observed every sample itself, because each
    observation occupies exactly one bucket.  [src] is unchanged. *)

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0,1]: the geometric midpoint of the bucket
    holding the q-th observation; [0.0] on an empty histogram. *)

val percentiles : histogram -> float * float * float
(** (p50, p90, p99). *)

val reset : unit -> unit
(** Zero every registered metric (handles stay valid). *)

val snapshot : unit -> Json.t
(** All registered metrics as one JSON object: counters and gauges by
    value, histograms as count/sum/min/max/p50/p90/p99. *)

val render : unit -> string
(** Human-readable listing of every non-empty metric, sorted by name. *)

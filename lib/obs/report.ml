let table header rows =
  let all = header :: rows in
  let columns = List.fold_left (fun n r -> max n (List.length r)) 0 all in
  let widths = Array.make columns 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 256 in
  let render_row r =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        if i = 0 then Buffer.add_string buf (Printf.sprintf "%-*s" widths.(i) cell)
        else Buffer.add_string buf (Printf.sprintf "%*s" widths.(i) cell))
      r;
    (* Trim the padding a short trailing cell leaves behind. *)
    while Buffer.length buf > 0 && Buffer.nth buf (Buffer.length buf - 1) = ' ' do
      Buffer.truncate buf (Buffer.length buf - 1)
    done;
    Buffer.add_char buf '\n'
  in
  render_row header;
  render_row
    (List.mapi (fun i _ -> String.make widths.(i) '-') (List.init columns (fun i -> i)));
  List.iter render_row rows;
  Buffer.contents buf

type row = {
  party : string;
  phase : string;
  mutable ns : int64;
  mutable calls : int;
  ops : (string, int) Hashtbl.t;
}

let ops_prefix = "ops."

let of_trace trace =
  let rows = ref [] (* reverse first-appearance order *) in
  let find party phase =
    match List.find_opt (fun r -> r.party = party && r.phase = phase) !rows with
    | Some r -> r
    | None ->
      let r = { party; phase; ns = 0L; calls = 0; ops = Hashtbl.create 8 } in
      rows := r :: !rows;
      r
  in
  let op_order = ref [] in
  List.iter
    (fun s ->
      if s.Trace.kind = Trace.Phase then begin
        let party =
          match Trace.find_attr s "party" with Some (Json.Str p) -> p | _ -> "-"
        in
        let r = find party s.Trace.name in
        r.ns <- Int64.add r.ns (Trace.duration_ns s);
        r.calls <- r.calls + 1;
        List.iter
          (fun (k, v) ->
            match v with
            | Json.Int n when String.length k > 4 && String.sub k 0 4 = ops_prefix ->
              let op = String.sub k 4 (String.length k - 4) in
              if not (List.mem op !op_order) then op_order := !op_order @ [ op ];
              Hashtbl.replace r.ops op (n + Option.value ~default:0 (Hashtbl.find_opt r.ops op))
            | _ -> ())
          (Trace.attrs s)
      end)
    (Trace.spans trace);
  let rows_in_order = List.rev !rows in
  let ops = !op_order in
  if rows_in_order = [] then "(no phase spans in trace)\n"
  else begin
    let header = [ "party"; "phase"; "ms" ] @ ops in
    let ms ns = Printf.sprintf "%.3f" (Int64.to_float ns /. 1e6) in
    let op_cell r op =
      match Hashtbl.find_opt r.ops op with
      | Some n when n > 0 -> string_of_int n
      | _ -> "."
    in
    let body =
      List.map
        (fun r -> [ r.party; r.phase; ms r.ns ] @ List.map (op_cell r) ops)
        rows_in_order
    in
    let total_ns =
      List.fold_left (fun acc r -> Int64.add acc r.ns) 0L rows_in_order
    in
    let total_op op =
      List.fold_left
        (fun acc r -> acc + Option.value ~default:0 (Hashtbl.find_opt r.ops op))
        0 rows_in_order
    in
    let totals =
      [ "total"; ""; ms total_ns ]
      @ List.map (fun op -> let n = total_op op in if n > 0 then string_of_int n else ".") ops
    in
    table header (body @ [ totals ])
  end

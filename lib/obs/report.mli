(** Human-readable cost reports derived from a collected trace.

    {!of_trace} folds all [Phase] spans by (party, phase) — summing
    durations across protocol retries — and renders an aligned matrix
    with one column per crypto primitive that appears in the spans'
    [ops.*] attributes, plus a totals row. *)

val table : string list -> string list list -> string
(** [table header rows] renders an aligned fixed-width table.  The first
    column is left-aligned, the rest right-aligned. *)

val of_trace : Trace.t -> string

type kind =
  | Protocol
  | Phase
  | Operation

let kind_name = function
  | Protocol -> "protocol"
  | Phase -> "phase"
  | Operation -> "operation"

type span = {
  id : int;
  parent : int option;
  name : string;
  kind : kind;
  start_ns : int64;
  mutable stop_ns : int64;
  mutable rev_attrs : (string * Json.t) list;
}

type event = {
  ev_name : string;
  ev_span : int option;
  ev_ns : int64;
  ev_attrs : (string * Json.t) list;
}

(* The collector is internally locked: span-id allocation, span/event
   appends, and stack edits all happen under [mu], so pool workers can
   share one collector (a process-global sink) without interleaving ids
   or losing appends.  Open-span stacks are per (domain, thread) — a
   systhread id is only unique within its domain — so each thread nests
   its own spans and never sees a sibling's stack. *)
type t = {
  epoch_ns : int64;
  mu : Mutex.t;
  mutable rev_spans : span list;
  mutable rev_events : event list;
  stacks : (int * int, span list) Hashtbl.t; (* innermost first *)
  mutable next_id : int;
}

let create () =
  {
    epoch_ns = Clock.now_ns ();
    mu = Mutex.create ();
    rev_spans = [];
    rev_events = [];
    stacks = Hashtbl.create 8;
    next_id = 0;
  }

let epoch_ns t = t.epoch_ns

let thread_key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

let stack_of t key = Option.value ~default:[] (Hashtbl.find_opt t.stacks key)

(* ------------------------------------------------------------------ *)
(* Sink selection: a thread-local binding shadows the global sink.

   [with_collector] registers the collector for the calling thread only
   (in a per-domain, mutex-guarded registry, like the per-thread crypto
   counters), so a server can give every concurrent session its own
   trace while unrelated threads still see the process-global sink.
   The disabled fast path stays two loads: an atomic binding count and
   the sink ref. *)

type binding_reg = { breg_mu : Mutex.t; breg : (int, t) Hashtbl.t }

let bindings_key : binding_reg Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { breg_mu = Mutex.create (); breg = Hashtbl.create 8 })

let bound_count = Atomic.make 0

let sink : t option ref = ref None

let install t = sink := Some t
let uninstall () = sink := None

let current () =
  if Atomic.get bound_count = 0 then !sink
  else begin
    let reg = Domain.DLS.get bindings_key in
    let id = Thread.id (Thread.self ()) in
    match Mutex.protect reg.breg_mu (fun () -> Hashtbl.find_opt reg.breg id) with
    | Some t -> Some t
    | None -> !sink
  end

let enabled () = Option.is_some (current ())

let with_collector t f =
  let reg = Domain.DLS.get bindings_key in
  let id = Thread.id (Thread.self ()) in
  let previous = Mutex.protect reg.breg_mu (fun () -> Hashtbl.find_opt reg.breg id) in
  Mutex.protect reg.breg_mu (fun () -> Hashtbl.replace reg.breg id t);
  Atomic.incr bound_count;
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect reg.breg_mu (fun () ->
          match previous with
          | Some p -> Hashtbl.replace reg.breg id p
          | None -> Hashtbl.remove reg.breg id);
      Atomic.decr bound_count)
    f

let collect f =
  let previous = !sink in
  let t = create () in
  sink := Some t;
  let restore () = sink := previous in
  match with_collector t f with
  | result ->
    restore ();
    (result, t)
  | exception e ->
    restore ();
    raise e

let rel t = Int64.sub (Clock.now_ns ()) t.epoch_ns

(* Span-close histogram observes go through one lock: the registry's
   histograms are shared across collectors, and an unsynchronized
   bucket bump from two pool workers could lose a count. *)
let metrics_mu = Mutex.create ()

let with_span ?(kind = Operation) ?(attrs = []) name f =
  match current () with
  | None -> f ()
  | Some t ->
    let key = thread_key () in
    let s =
      Mutex.protect t.mu (fun () ->
          let stack = stack_of t key in
          let parent = match stack with [] -> None | s :: _ -> Some s.id in
          let now = rel t in
          let s =
            { id = t.next_id; parent; name; kind; start_ns = now; stop_ns = now;
              rev_attrs = List.rev attrs }
          in
          t.next_id <- t.next_id + 1;
          t.rev_spans <- s :: t.rev_spans;
          Hashtbl.replace t.stacks key (s :: stack);
          s)
    in
    let close () =
      Mutex.protect t.mu (fun () ->
          s.stop_ns <- rel t;
          (* Pop through any spans an escaping exception left open. *)
          let rec pop = function
            | [] -> []
            | x :: rest -> if x == s then rest else pop rest
          in
          Hashtbl.replace t.stacks key (pop (stack_of t key)));
      if Metrics.recording () then
        Mutex.protect metrics_mu (fun () ->
            Metrics.observe
              (Metrics.histogram ("span." ^ name ^ ".seconds"))
              (Int64.to_float (Int64.sub s.stop_ns s.start_ns) /. 1e9))
    in
    (match f () with
     | result ->
       close ();
       result
     | exception e ->
       close ();
       raise e)

let add_attr name value =
  match current () with
  | None -> ()
  | Some t ->
    Mutex.protect t.mu (fun () ->
        match stack_of t (thread_key ()) with
        | [] -> ()
        | s :: _ -> s.rev_attrs <- (name, value) :: s.rev_attrs)

let event ?(attrs = []) name =
  match current () with
  | None -> ()
  | Some t ->
    Mutex.protect t.mu (fun () ->
        let ev_span =
          match stack_of t (thread_key ()) with [] -> None | s :: _ -> Some s.id
        in
        t.rev_events <-
          { ev_name = name; ev_span; ev_ns = rel t; ev_attrs = attrs } :: t.rev_events)

let current_span_id () =
  match current () with
  | None -> None
  | Some t ->
    Mutex.protect t.mu (fun () ->
        match stack_of t (thread_key ()) with [] -> None | s :: _ -> Some s.id)

let spans t = Mutex.protect t.mu (fun () -> List.rev t.rev_spans)
let events t = Mutex.protect t.mu (fun () -> List.rev t.rev_events)

let duration_ns s =
  let d = Int64.sub s.stop_ns s.start_ns in
  if Int64.compare d 0L < 0 then 0L else d

let attrs s = List.rev s.rev_attrs
let find_attr s name = List.assoc_opt name (attrs s)

let roots t = List.filter (fun s -> s.parent = None) (spans t)

let children t s = List.filter (fun c -> c.parent = Some s.id) (spans t)

let coverage t s =
  let total = Int64.to_float (duration_ns s) in
  if total <= 0.0 then 1.0
  else
    let covered =
      List.fold_left
        (fun acc c -> acc +. Int64.to_float (duration_ns c))
        0.0 (children t s)
    in
    Float.min 1.0 (covered /. total)

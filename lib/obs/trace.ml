type kind =
  | Protocol
  | Phase
  | Operation

let kind_name = function
  | Protocol -> "protocol"
  | Phase -> "phase"
  | Operation -> "operation"

type span = {
  id : int;
  parent : int option;
  name : string;
  kind : kind;
  start_ns : int64;
  mutable stop_ns : int64;
  mutable rev_attrs : (string * Json.t) list;
}

type event = {
  ev_name : string;
  ev_span : int option;
  ev_ns : int64;
  ev_attrs : (string * Json.t) list;
}

type t = {
  epoch_ns : int64;
  mutable rev_spans : span list;
  mutable rev_events : event list;
  mutable stack : span list; (* innermost first *)
  mutable next_id : int;
}

let create () =
  { epoch_ns = Clock.now_ns (); rev_spans = []; rev_events = []; stack = []; next_id = 0 }

let sink : t option ref = ref None

let install t = sink := Some t
let uninstall () = sink := None
let enabled () = Option.is_some !sink

let collect f =
  let previous = !sink in
  let t = create () in
  sink := Some t;
  let restore () = sink := previous in
  match f () with
  | result ->
    restore ();
    (result, t)
  | exception e ->
    restore ();
    raise e

let rel t = Int64.sub (Clock.now_ns ()) t.epoch_ns

let with_span ?(kind = Operation) ?(attrs = []) name f =
  match !sink with
  | None -> f ()
  | Some t ->
    let parent = match t.stack with [] -> None | s :: _ -> Some s.id in
    let now = rel t in
    let s =
      { id = t.next_id; parent; name; kind; start_ns = now; stop_ns = now;
        rev_attrs = List.rev attrs }
    in
    t.next_id <- t.next_id + 1;
    t.rev_spans <- s :: t.rev_spans;
    t.stack <- s :: t.stack;
    let close () =
      s.stop_ns <- rel t;
      (* Pop through any spans an escaping exception left open. *)
      let rec pop = function
        | [] -> []
        | x :: rest -> if x == s then rest else pop rest
      in
      t.stack <- pop t.stack;
      if Metrics.recording () then
        Metrics.observe
          (Metrics.histogram ("span." ^ name ^ ".seconds"))
          (Int64.to_float (Int64.sub s.stop_ns s.start_ns) /. 1e9)
    in
    (match f () with
     | result ->
       close ();
       result
     | exception e ->
       close ();
       raise e)

let add_attr name value =
  match !sink with
  | None -> ()
  | Some t ->
    (match t.stack with
     | [] -> ()
     | s :: _ -> s.rev_attrs <- (name, value) :: s.rev_attrs)

let event ?(attrs = []) name =
  match !sink with
  | None -> ()
  | Some t ->
    let ev_span = match t.stack with [] -> None | s :: _ -> Some s.id in
    t.rev_events <- { ev_name = name; ev_span; ev_ns = rel t; ev_attrs = attrs } :: t.rev_events

let spans t = List.rev t.rev_spans
let events t = List.rev t.rev_events

let duration_ns s =
  let d = Int64.sub s.stop_ns s.start_ns in
  if Int64.compare d 0L < 0 then 0L else d

let attrs s = List.rev s.rev_attrs
let find_attr s name = List.assoc_opt name (attrs s)

let roots t = List.filter (fun s -> s.parent = None) (spans t)

let children t s = List.filter (fun c -> c.parent = Some s.id) (spans t)

let coverage t s =
  let total = Int64.to_float (duration_ns s) in
  if total <= 0.0 then 1.0
  else
    let covered =
      List.fold_left
        (fun acc c -> acc +. Int64.to_float (duration_ns c))
        0.0 (children t s)
    in
    Float.min 1.0 (covered /. total)

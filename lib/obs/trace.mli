(** Span-based tracing.

    A trace is a tree of timed spans — protocol → phase → party-labelled
    work → operation — plus instant events (messages, injected faults,
    retries) anchored to the span that was open when they fired.  All
    timestamps come from the monotonic {!Clock}.

    The tracer is null-guarded like [Fault]: with no collector installed
    ({!enabled} [= false]), {!with_span} is a direct call of the thunk
    and {!event}/{!add_attr} are single-branch no-ops, so instrumented
    code pays nothing in ordinary runs.  Installation is process-global
    and not thread-safe — matching the rest of the stack. *)

type kind =
  | Protocol   (** one root per protocol attempt *)
  | Phase      (** a driver phase, usually party-attributed *)
  | Operation  (** finer-grained work inside a phase *)

val kind_name : kind -> string

type span = {
  id : int;
  parent : int option;
  name : string;
  kind : kind;
  start_ns : int64;             (** relative to the collector's epoch *)
  mutable stop_ns : int64;      (** equals [start_ns] while still open *)
  mutable rev_attrs : (string * Json.t) list;
}

type event = {
  ev_name : string;
  ev_span : int option;  (** innermost span open when the event fired *)
  ev_ns : int64;
  ev_attrs : (string * Json.t) list;
}

type t
(** A collector: accumulates the spans and events of one or more runs. *)

val create : unit -> t

val install : t -> unit
(** Make the collector the process-global trace sink (replacing any
    previous one). *)

val uninstall : unit -> unit
val enabled : unit -> bool

val collect : (unit -> 'a) -> 'a * t
(** Run the thunk under a fresh collector, restoring the previously
    installed sink (if any) afterwards — even on exceptions. *)

val with_span : ?kind:kind -> ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** Opens a child of the innermost open span (or a root), runs the thunk
    and closes the span — also on exceptions.  When {!Metrics.recording}
    is on, the span's duration is observed into the
    ["span.<name>.seconds"] histogram as it closes. *)

val add_attr : string -> Json.t -> unit
(** Attach an attribute to the innermost open span (no-op without one). *)

val event : ?attrs:(string * Json.t) list -> string -> unit
(** Record an instant event anchored to the innermost open span. *)

val spans : t -> span list
(** In opening order.  Only closed spans have a meaningful duration. *)

val events : t -> event list
(** In firing order. *)

val duration_ns : span -> int64

val attrs : span -> (string * Json.t) list
(** In attachment order. *)

val find_attr : span -> string -> Json.t option

val roots : t -> span list
val children : t -> span -> span list

val coverage : t -> span -> float
(** Fraction of the span's duration covered by its direct children
    (1.0 for a zero-duration span): the "no untraced gaps" check. *)

(** Span-based tracing.

    A trace is a tree of timed spans — protocol → phase → party-labelled
    work → operation — plus instant events (messages, injected faults,
    retries) anchored to the span that was open when they fired.  All
    timestamps come from the monotonic {!Clock}.

    The tracer is null-guarded like [Fault]: with no collector installed
    or bound ({!enabled} [= false]), {!with_span} is a direct call of the
    thunk and {!event}/{!add_attr} are two-load no-ops, so instrumented
    code pays nothing in ordinary runs.

    Concurrency: a collector is internally locked — span-id allocation
    and span/event appends are serialized, and each (domain, thread)
    keeps its own open-span stack — so one collector may be shared by a
    worker pool.  Which collector a thread records into is decided per
    thread: {!with_collector} binds one to the calling thread (shadowing
    the process-global sink of {!install}), which is how a server gives
    every concurrent session its own trace. *)

type kind =
  | Protocol   (** one root per protocol attempt *)
  | Phase      (** a driver phase, usually party-attributed *)
  | Operation  (** finer-grained work inside a phase *)

val kind_name : kind -> string

type span = {
  id : int;
  parent : int option;
  name : string;
  kind : kind;
  start_ns : int64;             (** relative to the collector's epoch *)
  mutable stop_ns : int64;      (** equals [start_ns] while still open *)
  mutable rev_attrs : (string * Json.t) list;
}

type event = {
  ev_name : string;
  ev_span : int option;  (** innermost span open when the event fired *)
  ev_ns : int64;
  ev_attrs : (string * Json.t) list;
}

type t
(** A collector: accumulates the spans and events of one or more runs. *)

val create : unit -> t

val epoch_ns : t -> int64
(** The monotonic-clock instant the collector was created: the zero
    point of every span timestamp.  Comparable across processes on one
    host, which is what lets a merged multi-process trace share a
    timeline. *)

val install : t -> unit
(** Make the collector the process-global trace sink (replacing any
    previous one).  Threads with a {!with_collector} binding are
    unaffected. *)

val uninstall : unit -> unit
val enabled : unit -> bool

val with_collector : t -> (unit -> 'a) -> 'a
(** Run the thunk with the collector bound to the calling thread only:
    spans and events from this thread land in it regardless of the
    global sink, and other threads are unaffected.  Nests; restored on
    exceptions.  The binding does not propagate to threads or domains
    spawned inside the thunk. *)

val collect : (unit -> 'a) -> 'a * t
(** Run the thunk under a fresh collector — installed globally {e and}
    bound to the calling thread — restoring the previous sink (if any)
    afterwards, even on exceptions. *)

val with_span : ?kind:kind -> ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** Opens a child of the calling thread's innermost open span (or a
    root), runs the thunk and closes the span — also on exceptions.
    When {!Metrics.recording} is on, the span's duration is observed
    into the ["span.<name>.seconds"] histogram as it closes. *)

val add_attr : string -> Json.t -> unit
(** Attach an attribute to the innermost open span (no-op without one). *)

val event : ?attrs:(string * Json.t) list -> string -> unit
(** Record an instant event anchored to the innermost open span. *)

val current_span_id : unit -> int option
(** The id of the calling thread's innermost open span, if any — what a
    distributed caller embeds in a frame so a remote process can parent
    its spans under this one. *)

val spans : t -> span list
(** In opening order.  Only closed spans have a meaningful duration. *)

val events : t -> event list
(** In firing order. *)

val duration_ns : span -> int64

val attrs : span -> (string * Json.t) list
(** In attachment order. *)

val find_attr : span -> string -> Json.t option

val roots : t -> span list
val children : t -> span -> span list

val coverage : t -> span -> float
(** Fraction of the span's duration covered by its direct children
    (1.0 for a zero-duration span): the "no untraced gaps" check. *)

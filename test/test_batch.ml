(* Differential tests of the domain-parallel Batch executor: order and
   exception semantics, counter merging, bit-identical ciphertext bytes
   at every domain count, and full-protocol equivalence for all five
   schemes when the parallel executor is enabled. *)

open Secmed_crypto
open Secmed_relalg
open Secmed_core

let fast = { Env.group_bits = 160; paillier_bits = 384 }

let small_spec =
  {
    Workload.default with
    rows_left = 10;
    rows_right = 10;
    distinct_left = 5;
    distinct_right = 5;
    overlap = 3;
    extra_attrs = 1;
  }

let domain_counts = [ 1; 2; 4 ]

let with_domains k f =
  let saved = Batch.default_domains () in
  Batch.set_default_domains k;
  Fun.protect ~finally:(fun () -> Batch.set_default_domains saved) f

(* ------------------------------------------------------------------ *)
(* Executor semantics. *)

let test_parallel_map_basics () =
  let items = Array.init 37 Fun.id in
  let expect = Array.map (fun x -> x * x) items in
  List.iter
    (fun k ->
      Alcotest.(check (array int))
        (Printf.sprintf "%d domains" k)
        expect
        (Batch.parallel_map ~domains:k (fun x -> x * x) items))
    domain_counts;
  Alcotest.(check (array int)) "mapi passes indices"
    (Array.init 10 (fun i -> 2 * i))
    (Batch.parallel_mapi ~domains:3 (fun i x -> i + x) (Array.init 10 Fun.id));
  Alcotest.(check (array int)) "empty input" [||]
    (Batch.parallel_map ~domains:4 Fun.id [||]);
  Alcotest.(check (array int)) "fewer items than domains" [| 7 |]
    (Batch.parallel_map ~domains:4 Fun.id [| 7 |]);
  Alcotest.(check (list int)) "list wrapper" [ 2; 4; 6 ]
    (Batch.map_list ~domains:2 (fun x -> 2 * x) [ 1; 2; 3 ]);
  Alcotest.check_raises "worker exception propagates" (Invalid_argument "boom")
    (fun () ->
      ignore
        (Batch.parallel_map ~domains:2
           (fun x -> if x = 5 then invalid_arg "boom" else x)
           items));
  Alcotest.check_raises "bad domain count"
    (Invalid_argument "Batch.set_default_domains: must be >= 1") (fun () ->
      Batch.set_default_domains 0)

(* Worker-domain counters must fold back into the caller's open scope:
   totals and per-(party, phase) attribution equal the sequential run. *)
let test_counter_merge () =
  let group = Group.default ~bits:160 in
  let kp = Elgamal.keygen (Prng.create ~seed:"batch-counter-key") group in
  let pk = Elgamal.public kp in
  let prng = Prng.create ~seed:"batch-counter" in
  let payloads = Array.init 12 (fun i -> String.make 40 (Char.chr (65 + i))) in
  let run k =
    Counters.with_fresh (fun () ->
        Counters.scoped ~party:"S1" ~phase:"source-encrypt" (fun () ->
            ignore
              (Batch.map_seeded ~domains:k ~prng ~label:"cnt"
                 (fun _ prng p -> Hybrid.encrypt prng pk p)
                 payloads));
        Counters.attribution ())
  in
  let attr1, counts1 = run 1 in
  Alcotest.(check int) "sequential run counted hybrid encryptions" 12
    (List.assoc Counters.Hybrid_encrypt counts1);
  List.iter
    (fun k ->
      let attrk, countsk = run k in
      Alcotest.(check bool)
        (Printf.sprintf "totals at %d domains" k)
        true (counts1 = countsk);
      Alcotest.(check bool)
        (Printf.sprintf "attribution at %d domains" k)
        true (attr1 = attrk))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Bit-identical ciphertext bytes at any domain count. *)

let test_seeded_bit_identical () =
  let group = Group.default ~bits:160 in
  let kp = Elgamal.keygen (Prng.create ~seed:"batch-bytes-key") group in
  let pk = Elgamal.public kp in
  let prng = Prng.create ~seed:"batch-bytes" in
  let payloads = Array.init 17 (fun i -> String.make (20 + i) (Char.chr (97 + (i mod 26)))) in
  let wire k =
    String.concat ""
      (Array.to_list
         (Array.map Hybrid.to_wire
            (Batch.map_seeded ~domains:k ~prng ~label:"bytes"
               (fun _ prng p -> Hybrid.encrypt prng pk p)
               payloads)))
  in
  let reference = wire 1 in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "bytes at %d domains" k)
        true
        (String.equal reference (wire k)))
    [ 2; 3; 4 ];
  (* The parent stream is not consumed by splitting: a draw after the
     batch is position-independent of the batch size. *)
  let p1 = Prng.create ~seed:"parent-probe" in
  ignore (Batch.map_seeded ~domains:2 ~prng:p1 ~label:"probe"
            (fun _ prng _ -> Prng.bytes prng 8) (Array.make 5 ()));
  let after_batch = Prng.bytes p1 8 in
  let p2 = Prng.create ~seed:"parent-probe" in
  Alcotest.(check string) "parent stream untouched" (Prng.bytes p2 8) after_batch

(* DAS source encryption: the full encrypted relation (ciphertexts and
   index vectors) is byte-identical across domain counts. *)
let test_das_rows_identical () =
  let left, _ = Workload.generate small_spec in
  let group = Group.default ~bits:160 in
  let kp = Elgamal.keygen (Prng.create ~seed:"batch-das-key") group in
  let pk = Elgamal.public kp in
  let join_attrs = [ "a_join" ] in
  let tables =
    [ Das_partition.build (Das_partition.Equi_depth 3) ~relation:"R1" ~attr:"a_join"
        (Relation.column left "a_join") ]
  in
  let encode k =
    let prng = Prng.create ~seed:"batch-das" in
    let er = Das.encrypt_relation ~domains:k prng pk tables ~join_attrs left in
    String.concat ""
      (List.map
         (fun (ct, idx) ->
           Hybrid.to_wire ct
           ^ String.concat ":" (Array.to_list (Array.map string_of_int idx)))
         er.Das.rows)
  in
  let reference = encode 1 in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "rows at %d domains" k)
        true
        (String.equal reference (encode k)))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Full protocols: every scheme must produce the same result relation,
   transcript (labels, sizes, order) and counter totals whether the
   batch executor runs on 1, 2 or 4 domains. *)

let test_all_schemes_domain_invariant () =
  let run scheme k =
    with_domains k (fun () ->
        let env, client, query = Workload.scenario ~params:fast small_spec in
        Protocol.run_exn scheme env client ~query)
  in
  List.iter
    (fun scheme ->
      let name = Protocol.scheme_name scheme in
      let reference = run scheme 1 in
      Alcotest.(check bool)
        (Printf.sprintf "%s correct" name)
        true (Outcome.correct reference);
      List.iter
        (fun k ->
          let o = run scheme k in
          Alcotest.(check string)
            (Printf.sprintf "%s result at %d domains" name k)
            (Relation.to_string reference.Outcome.result)
            (Relation.to_string o.Outcome.result);
          Alcotest.(check bool)
            (Printf.sprintf "%s transcript at %d domains" name k)
            true
            (Secmed_mediation.Transcript.messages reference.Outcome.transcript
            = Secmed_mediation.Transcript.messages o.Outcome.transcript);
          Alcotest.(check bool)
            (Printf.sprintf "%s counters at %d domains" name k)
            true
            (reference.Outcome.counters = o.Outcome.counters))
        [ 2; 4 ])
    Protocol.all_schemes

let () =
  Alcotest.run "batch"
    [
      ( "executor",
        [
          Alcotest.test_case "parallel map semantics" `Quick test_parallel_map_basics;
          Alcotest.test_case "counter merge" `Quick test_counter_merge;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "seeded encryption bit-identical" `Quick
            test_seeded_bit_identical;
          Alcotest.test_case "das rows bit-identical" `Quick test_das_rows_identical;
          Alcotest.test_case "all schemes domain-invariant" `Quick
            test_all_schemes_domain_invariant;
        ] );
    ]

(* Unit and property tests for the arbitrary-precision integer substrate. *)

open Secmed_bigint

let b = Bigint.of_string
let i = Bigint.of_int

let check_big msg expected actual =
  Alcotest.check Alcotest.string msg expected (Bigint.to_string actual)

(* ------------------------------------------------------------------ *)
(* Unit tests. *)

let test_of_int_roundtrip () =
  List.iter
    (fun n -> Alcotest.(check int) (string_of_int n) n (Bigint.to_int (i n)))
    [ 0; 1; -1; 42; -42; max_int; min_int; max_int - 1; min_int + 1; 1 lsl 40 ]

let test_of_string_decimal () =
  check_big "plain" "123456789" (b "123456789");
  check_big "negative" "-987" (b "-987");
  check_big "plus sign" "55" (b "+55");
  check_big "underscores" "1000000" (b "1_000_000");
  check_big "leading zeros" "7" (b "0007");
  check_big "zero" "0" (b "-0")

let test_of_string_hex () =
  check_big "hex" "255" (b "0xff");
  check_big "hex upper" "48879" (b "0XBEEF");
  check_big "hex negative" "-16" (b "-0x10");
  Alcotest.(check string) "hex render" "0xdeadbeef" (Bigint.to_hex (b "0xdeadbeef"))

let test_of_string_errors () =
  List.iter
    (fun s ->
      match Bigint.of_string_opt s with
      | None -> ()
      | Some v -> Alcotest.failf "%S should not parse (got %s)" s (Bigint.to_string v))
    [ ""; "-"; "abc"; "12x"; "0x"; "--5"; " 42"; "4 2" ]

let test_known_product () =
  check_big "big product"
    "121932631137021795226185032733744855963362292333223746380111126352690"
    (Bigint.mul
       (b "123456789012345678901234567890")
       (b "987654321098765432109876543210987654321"))

let test_known_quotient () =
  let q, r = Bigint.divmod (b "10000000000000000000000000000000000000001") (b "333333333333333") in
  check_big "quotient" "30000000000000030000000000" q;
  check_big "remainder" "10000000001" r

let test_factorial () =
  let rec fact acc n = if n = 0 then acc else fact (Bigint.mul_int acc n) (n - 1) in
  check_big "50!"
    "30414093201713378043612608166064768844377641568960512000000000000"
    (fact Bigint.one 50)

let test_pow () =
  check_big "2^200" "1606938044258990275541962092341162602522202993782792835301376"
    (Bigint.pow Bigint.two 200);
  check_big "x^0" "1" (Bigint.pow (b "123456") 0);
  check_big "(-3)^3" "-27" (Bigint.pow (i (-3)) 3);
  Alcotest.check_raises "negative exponent" (Invalid_argument "Bigint.pow: negative exponent")
    (fun () -> ignore (Bigint.pow Bigint.two (-1)))

let test_truncated_division_signs () =
  let cases =
    [ (7, 2, 3, 1); (-7, 2, -3, -1); (7, -2, -3, 1); (-7, -2, 3, -1); (6, 3, 2, 0) ]
  in
  List.iter
    (fun (x, y, q, r) ->
      let q', r' = Bigint.divmod (i x) (i y) in
      Alcotest.(check int) (Printf.sprintf "%d/%d q" x y) q (Bigint.to_int q');
      Alcotest.(check int) (Printf.sprintf "%d mod %d" x y) r (Bigint.to_int r'))
    cases

let test_euclidean_division () =
  Alcotest.(check int) "emod pos" 1 (Bigint.to_int (Bigint.emod (i (-7)) (i 2)));
  Alcotest.(check int) "emod neg divisor" 1 (Bigint.to_int (Bigint.emod (i (-7)) (i (-2))));
  Alcotest.(check int) "ediv" (-4) (Bigint.to_int (Bigint.ediv (i (-7)) (i 2)))

let test_division_by_zero () =
  Alcotest.check_raises "div zero" Bigint.Division_by_zero_big (fun () ->
      ignore (Bigint.div Bigint.one Bigint.zero));
  Alcotest.check_raises "emod zero" Bigint.Division_by_zero_big (fun () ->
      ignore (Bigint.emod Bigint.one Bigint.zero))

let test_shifts () =
  check_big "shl" "1024" (Bigint.shift_left Bigint.one 10);
  check_big "shr" "1" (Bigint.shift_right (b "1024") 10);
  check_big "shr to zero" "0" (Bigint.shift_right (b "1023") 10);
  check_big "shl big" (Bigint.to_string (Bigint.pow Bigint.two 100))
    (Bigint.shift_left Bigint.one 100);
  check_big "neg shl" "-8" (Bigint.shift_left (i (-1)) 3)

let test_numbits_testbit () =
  Alcotest.(check int) "numbits 0" 0 (Bigint.numbits Bigint.zero);
  Alcotest.(check int) "numbits 1" 1 (Bigint.numbits Bigint.one);
  Alcotest.(check int) "numbits 255" 8 (Bigint.numbits (i 255));
  Alcotest.(check int) "numbits 256" 9 (Bigint.numbits (i 256));
  Alcotest.(check int) "numbits 2^100" 101 (Bigint.numbits (Bigint.pow Bigint.two 100));
  Alcotest.(check bool) "bit0 of 5" true (Bigint.testbit (i 5) 0);
  Alcotest.(check bool) "bit1 of 5" false (Bigint.testbit (i 5) 1);
  Alcotest.(check bool) "bit2 of 5" true (Bigint.testbit (i 5) 2);
  Alcotest.(check bool) "bit99 of 2^100" false (Bigint.testbit (Bigint.pow Bigint.two 100) 99);
  Alcotest.(check bool) "bit100 of 2^100" true (Bigint.testbit (Bigint.pow Bigint.two 100) 100)

let test_gcd () =
  Alcotest.(check int) "gcd" 6 (Bigint.to_int (Bigint.gcd (i 48) (i 18)));
  Alcotest.(check int) "gcd neg" 6 (Bigint.to_int (Bigint.gcd (i (-48)) (i 18)));
  Alcotest.(check int) "gcd zero" 5 (Bigint.to_int (Bigint.gcd Bigint.zero (i 5)));
  Alcotest.(check int) "gcd both zero" 0 (Bigint.to_int (Bigint.gcd Bigint.zero Bigint.zero))

let test_extended_gcd () =
  let g, u, v = Bigint.extended_gcd (i 240) (i 46) in
  Alcotest.(check int) "g" 2 (Bigint.to_int g);
  Alcotest.(check bool) "bezout" true
    (Bigint.equal g (Bigint.add (Bigint.mul u (i 240)) (Bigint.mul v (i 46))))

let test_mod_inverse () =
  (match Bigint.mod_inverse (i 3) (i 11) with
   | Some inv -> Alcotest.(check int) "3^-1 mod 11" 4 (Bigint.to_int inv)
   | None -> Alcotest.fail "inverse exists");
  (match Bigint.mod_inverse (i 4) (i 8) with
   | None -> ()
   | Some _ -> Alcotest.fail "no inverse for gcd > 1");
  match Bigint.mod_inverse (i (-3)) (i 11) with
  | Some inv ->
    Alcotest.(check int) "negative base" 1
      (Bigint.to_int (Bigint.emod (Bigint.mul inv (i (-3))) (i 11)))
  | None -> Alcotest.fail "inverse of negative exists"

let test_mod_pow () =
  (* Fermat's little theorem for a large prime. *)
  let p = b "1000000007" in
  Alcotest.(check bool) "fermat" true
    (Bigint.is_one (Bigint.mod_pow (i 2) (Bigint.pred p) p));
  Alcotest.(check int) "zero exponent" 1 (Bigint.to_int (Bigint.mod_pow (i 5) Bigint.zero (i 7)));
  Alcotest.(check int) "mod one" 0 (Bigint.to_int (Bigint.mod_pow (i 5) (i 3) Bigint.one));
  (* Negative exponent = inverse power. *)
  let x = Bigint.mod_pow (i 3) (i (-1)) (i 11) in
  Alcotest.(check int) "negative exponent" 4 (Bigint.to_int x)

let test_bytes_roundtrip () =
  let v = b "123456789123456789123456789" in
  Alcotest.(check bool) "roundtrip" true (Bigint.equal v (Bigint.of_bytes_be (Bigint.to_bytes_be v)));
  Alcotest.(check string) "empty for zero" "" (Bigint.to_bytes_be Bigint.zero);
  Alcotest.(check string) "single byte" "\x2a" (Bigint.to_bytes_be (i 42));
  Alcotest.(check string) "padded" "\x00\x00\x2a" (Bigint.to_bytes_be_padded 3 (i 42));
  Alcotest.check_raises "too wide" (Invalid_argument "Bigint.to_bytes_be_padded: value too wide")
    (fun () -> ignore (Bigint.to_bytes_be_padded 1 (i 300)))

let test_comparisons () =
  let values = List.map b [ "-100"; "-1"; "0"; "1"; "99"; "100"; "10000000000000000000" ] in
  let sorted = List.sort Bigint.compare (List.rev values) in
  Alcotest.(check (list string)) "sorted order"
    (List.map Bigint.to_string values)
    (List.map Bigint.to_string sorted);
  Alcotest.(check bool) "min" true (Bigint.equal (i (-5)) (Bigint.min (i (-5)) (i 3)));
  Alcotest.(check bool) "max" true (Bigint.equal (i 3) (Bigint.max (i (-5)) (i 3)))

let test_to_int_overflow () =
  let too_big = Bigint.pow Bigint.two 80 in
  Alcotest.check_raises "overflow" Bigint.Overflow (fun () -> ignore (Bigint.to_int too_big));
  Alcotest.(check bool) "opt none" true (Bigint.to_int_opt too_big = None);
  Alcotest.(check bool) "min_int fits" true (Bigint.to_int_opt (i min_int) = Some min_int);
  Alcotest.(check bool) "min_int-1 overflows" true
    (Bigint.to_int_opt (Bigint.pred (i min_int)) = None)

let test_montgomery_edges () =
  (* Small moduli, degenerate bases/exponents, both code paths. *)
  let cases =
    [ (0, 100, 3); (1, 100, 3); (2, 100, 3); (5, 0, 7); (5, 1, 7); (7, 64, 3);
      (10, 33, 1); (123456, 65537, 1000003) ]
  in
  List.iter
    (fun (base, e, m) ->
      let expected =
        Bigint.mod_pow_plain (Bigint.emod (i base) (i m)) (i e) (i m)
      in
      Alcotest.(check string)
        (Printf.sprintf "%d^%d mod %d" base e m)
        (Bigint.to_string expected)
        (Bigint.to_string (Bigint.mod_pow (i base) (i e) (i m))))
    cases;
  (* A modulus of exactly one limb boundary (2^31 +/- around). *)
  let m = Bigint.succ (Bigint.shift_left Bigint.one 31) in
  let r = Bigint.mod_pow (i 3) (i 1000) m in
  Alcotest.(check string) "limb boundary" (Bigint.to_string (Bigint.mod_pow_plain (i 3) (i 1000) m))
    (Bigint.to_string r)

let test_ctx_edges () =
  (* Explicit contexts: degenerate moduli, exponent zero, base >= m,
     even moduli (no Montgomery inverse — Plain fallback kind). *)
  Alcotest.check_raises "zero modulus" (Invalid_argument "Bigint.Ctx.create: modulus must be positive")
    (fun () -> ignore (Bigint.Ctx.create Bigint.zero));
  Alcotest.check_raises "negative modulus" (Invalid_argument "Bigint.Ctx.create: modulus must be positive")
    (fun () -> ignore (Bigint.Ctx.create (i (-7))));
  let one_ctx = Bigint.Ctx.create Bigint.one in
  Alcotest.(check int) "mod one" 0 (Bigint.to_int (Bigint.Ctx.mod_pow one_ctx (i 5) (i 3)));
  let odd = Bigint.Ctx.create (i 1000003) in
  Alcotest.(check int) "exp zero" 1 (Bigint.to_int (Bigint.Ctx.mod_pow odd (i 5) Bigint.zero));
  Alcotest.(check int) "base >= m" (Bigint.to_int (Bigint.mod_pow_plain (Bigint.emod (i 2000007) (i 1000003)) (i 12) (i 1000003)))
    (Bigint.to_int (Bigint.Ctx.mod_pow odd (i 2000007) (i 12)));
  Alcotest.(check int) "negative exponent" 4
    (Bigint.to_int (Bigint.Ctx.mod_pow (Bigint.Ctx.create (i 11)) (i 3) (i (-1))));
  let even = Bigint.Ctx.create (i 1000000) in
  Alcotest.(check bool) "even modulus never montgomery" false (Bigint.Ctx.uses_montgomery even);
  Alcotest.(check int) "even modulus pow" (Bigint.to_int (Bigint.mod_pow_plain (i 7) (i 65) (i 1000000)))
    (Bigint.to_int (Bigint.Ctx.mod_pow even (i 7) (i 65)));
  Alcotest.(check int) "mod_mul" ((123 * 4567) mod 1000003)
    (Bigint.to_int (Bigint.Ctx.mod_mul odd (i 123) (i 4567)))

let test_fixed_base_edges () =
  let m = b "0xffffffff00000001" in  (* odd 64-bit *)
  let g = i 7 in
  let fb = Bigint.Fixed_base.create ~base:g ~modulus:m ~bits:64 in
  Alcotest.(check int) "exp zero" 1 (Bigint.to_int (Bigint.Fixed_base.pow fb Bigint.zero));
  let e = b "0x123456789abcdef" in
  check_big "in-range exponent"
    (Bigint.to_string (Bigint.mod_pow_plain g e m))
    (Bigint.Fixed_base.pow fb e);
  (* Exponent wider than the table: falls back to the generic context path. *)
  let wide = Bigint.shift_left Bigint.one 80 in
  check_big "oversized exponent falls back"
    (Bigint.to_string (Bigint.mod_pow_plain g wide m))
    (Bigint.Fixed_base.pow fb wide);
  check_big "negative exponent falls back"
    (Bigint.to_string (Bigint.mod_pow g (i (-1)) m))
    (Bigint.Fixed_base.pow fb (i (-1)));
  (* The knob disables the table entirely but the answer is unchanged. *)
  Bigint.use_montgomery := false;
  check_big "knob off" (Bigint.to_string (Bigint.mod_pow_plain g e m)) (Bigint.Fixed_base.pow fb e);
  Bigint.use_montgomery := true

let test_ctx_cache () =
  (* A cache hit must return exactly what the cold miss computed, and
     filling all slots must evict cleanly. *)
  Bigint.ctx_cache_reset ();
  let m = b "0xc000000000000000000000000000000d" in
  let base = b "0x123456789" and e = b "0x87654321fedcba" in
  let cold = Bigint.mod_pow base e m in
  let _, misses0 = Bigint.ctx_cache_stats () in
  let warm = Bigint.mod_pow base e m in
  let hits1, misses1 = Bigint.ctx_cache_stats () in
  Alcotest.(check bool) "hit equals miss" true (Bigint.equal cold warm);
  Alcotest.(check bool) "second call hit" true (hits1 >= 1 && misses1 = misses0);
  (* Force eviction: more distinct odd moduli than slots, then revisit. *)
  for k = 0 to 9 do
    let mk = Bigint.add m (i (2 * k)) in
    ignore (Bigint.mod_pow base e mk)
  done;
  let again = Bigint.mod_pow base e m in
  Alcotest.(check bool) "post-eviction recompute agrees" true (Bigint.equal cold again)

let test_multi_exp () =
  let rng = Secmed_crypto.Prng.of_int_seed 4242 in
  let rand bits = Bigint.random_bits (Secmed_crypto.Prng.byte_source rng) bits in
  let reference c b1 e1 b2 e2 =
    Bigint.Ctx.mod_mul c (Bigint.Ctx.mod_pow c b1 e1) (Bigint.Ctx.mod_pow c b2 e2)
  in
  let moduli =
    [
      b "0xc000000000000000000000000000000d" (* odd: Montgomery route *);
      Bigint.succ (b "0xc000000000000000000000000000000d") (* even: fallback *);
      i 2;
      i 1 (* ring collapses to 0 *);
    ]
  in
  List.iter
    (fun m ->
      let c = Bigint.Ctx.create m in
      for _ = 1 to 25 do
        let b1 = Bigint.emod (rand 130) m and b2 = Bigint.emod (rand 130) m in
        let e1 = rand 130 and e2 = rand 130 in
        check_big "pow2 matches two mod_pows"
          (Bigint.to_string (reference c b1 e1 b2 e2))
          (Bigint.Multi_exp.pow2 c (b1, e1) (b2, e2))
      done;
      (* Degenerate exponent shapes. *)
      let b1 = Bigint.emod (rand 100) m and b2 = Bigint.emod (rand 100) m in
      List.iter
        (fun (e1, e2) ->
          check_big "pow2 edge exponents"
            (Bigint.to_string (reference c b1 e1 b2 e2))
            (Bigint.Multi_exp.pow2 c (b1, e1) (b2, e2)))
        [
          (Bigint.zero, Bigint.zero);
          (Bigint.zero, rand 90);
          (rand 90, Bigint.zero);
          (Bigint.one, rand 4);
          (rand 300, rand 5) (* very unbalanced widths *);
          (rand 5, rand 300);
        ])
    moduli;
  (* mul_pow against multiply-then-pow. *)
  let m = b "0xffffffff00000001" in
  let c = Bigint.Ctx.create m in
  for _ = 1 to 25 do
    let a = Bigint.emod (rand 64) m and base = Bigint.emod (rand 64) m in
    let e = rand 64 in
    check_big "mul_pow"
      (Bigint.to_string (Bigint.Ctx.mod_mul c a (Bigint.Ctx.mod_pow c base e)))
      (Bigint.Multi_exp.mul_pow c a base e)
  done;
  (* Fixed-base composition: in-table, out-of-table, and knob-off paths. *)
  let g = i 7 in
  let fb = Bigint.Fixed_base.create ~base:g ~modulus:m ~bits:64 in
  let check_fb e1 b2 e2 =
    check_big "pow2_fb"
      (Bigint.to_string
         (Bigint.Ctx.mod_mul c (Bigint.mod_pow g e1 m) (Bigint.Ctx.mod_pow c b2 e2)))
      (Bigint.Multi_exp.pow2_fb fb e1 (b2, e2));
    check_big "mul_pow_fb"
      (Bigint.to_string (Bigint.Ctx.mod_mul c b2 (Bigint.mod_pow g e1 m)))
      (Bigint.Multi_exp.mul_pow_fb fb b2 e1)
  in
  for _ = 1 to 25 do
    check_fb (rand 64) (Bigint.emod (rand 64) m) (rand 64)
  done;
  check_fb (rand 100) (Bigint.emod (rand 64) m) (rand 64);
  check_fb Bigint.zero (Bigint.emod (rand 64) m) Bigint.zero;
  Bigint.use_montgomery := false;
  check_fb (rand 64) (Bigint.emod (rand 64) m) (rand 64);
  let b1 = Bigint.emod (rand 64) m and e1 = rand 64 in
  let b2 = Bigint.emod (rand 64) m and e2 = rand 64 in
  check_big "pow2 with knob off"
    (Bigint.to_string
       (Bigint.emod (Bigint.mul (Bigint.mod_pow b1 e1 m) (Bigint.mod_pow b2 e2 m)) m))
    (Bigint.Multi_exp.pow2 c (b1, e1) (b2, e2));
  Bigint.use_montgomery := true

let test_cache_domain_stress () =
  (* Domains hammer the transparent context cache with more distinct odd
     moduli than slots, concurrently; every result must match the plain
     reference, and the main domain's counters must be untouched. *)
  Bigint.ctx_cache_reset ();
  let base_m = b "0xc000000000000000000000000000000d" in
  let e = b "0x87654321fedcba987654321" in
  let worker d () =
    let ok = ref true in
    for round = 0 to 19 do
      let mk = Bigint.add base_m (i (2 * (((d * 20) + round) mod 12))) in
      let base = Bigint.add (i (d + 2)) (i round) in
      let got = Bigint.mod_pow base e mk in
      let want = Bigint.mod_pow_plain (Bigint.emod base mk) e mk in
      if not (Bigint.equal got want) then ok := false
    done;
    let hits, misses = Bigint.ctx_cache_stats () in
    (!ok, hits + misses)
  in
  let hits0, misses0 = Bigint.ctx_cache_stats () in
  let doms = Array.init 4 (fun d -> Domain.spawn (worker d)) in
  let results = Array.map Domain.join doms in
  Array.iter
    (fun (ok, touched) ->
      Alcotest.(check bool) "worker results correct" true ok;
      Alcotest.(check bool) "worker used its own cache" true (touched > 0))
    results;
  let hits1, misses1 = Bigint.ctx_cache_stats () in
  Alcotest.(check (pair int int)) "main-domain stats isolated" (hits0, misses0)
    (hits1, misses1);
  (* Fixed-base table cache: same base/modulus from several domains at
     once, each domain building (then reusing) its own table. *)
  let m = b "0xffffffff00000001" in
  let fb_worker d () =
    let fb = Bigint.Fixed_base.cached ~base:(i 7) ~modulus:m ~bits:64 in
    let fb' = Bigint.Fixed_base.cached ~base:(i 7) ~modulus:m ~bits:64 in
    let e = Bigint.add (b "0x123456789abcdef") (i d) in
    fb == fb' && Bigint.equal (Bigint.Fixed_base.pow fb e) (Bigint.mod_pow_plain (i 7) e m)
  in
  let doms = Array.init 4 (fun d -> Domain.spawn (fb_worker d)) in
  Array.iter
    (fun d -> Alcotest.(check bool) "fixed-base cache per domain" true (Domain.join d))
    doms

let test_infix () =
  let open Bigint.Infix in
  Alcotest.(check bool) "arith" true (i 2 + i 3 * i 4 = i 14);
  Alcotest.(check bool) "compare" true (i 5 > i 4 && i 4 >= i 4 && i 3 < i 4 && i 3 <> i 4);
  Alcotest.(check bool) "unary minus" true (-i 5 = i (-5));
  Alcotest.(check bool) "mod" true (i 7 mod i 3 = i 1)

(* ------------------------------------------------------------------ *)
(* Property tests. *)

let prng = Secmed_crypto.Prng.of_int_seed 99

let arbitrary_bigint =
  (* Random magnitude up to ~600 bits with random sign; biased toward
     interesting small values. *)
  let gen =
    QCheck2.Gen.(
      let* shape = int_range 0 10 in
      if shape = 0 then map Bigint.of_int (int_range (-1000) 1000)
      else begin
        let* bits = int_range 1 600 in
        let* negative = bool in
        return
          (let v = Bigint.random_bits (Secmed_crypto.Prng.byte_source prng) bits in
           if negative then Bigint.neg v else v)
      end)
  in
  QCheck2.Gen.map (fun v -> v) gen

let prop name ?(count = 300) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let pair2 = QCheck2.Gen.pair arbitrary_bigint arbitrary_bigint
let triple3 = QCheck2.Gen.triple arbitrary_bigint arbitrary_bigint arbitrary_bigint

let props =
  [
    prop "string roundtrip" arbitrary_bigint (fun a ->
        Bigint.equal a (Bigint.of_string (Bigint.to_string a)));
    prop "hex roundtrip" arbitrary_bigint (fun a ->
        Bigint.equal a (Bigint.of_string (Bigint.to_hex a)));
    prop "add commutative" pair2 (fun (a, bb) ->
        Bigint.equal (Bigint.add a bb) (Bigint.add bb a));
    prop "add associative" triple3 (fun (a, bb, c) ->
        Bigint.equal (Bigint.add a (Bigint.add bb c)) (Bigint.add (Bigint.add a bb) c));
    prop "add neg is sub" pair2 (fun (a, bb) ->
        Bigint.equal (Bigint.sub a bb) (Bigint.add a (Bigint.neg bb)));
    prop "mul commutative" pair2 (fun (a, bb) ->
        Bigint.equal (Bigint.mul a bb) (Bigint.mul bb a));
    prop "mul associative" ~count:120 triple3 (fun (a, bb, c) ->
        Bigint.equal (Bigint.mul a (Bigint.mul bb c)) (Bigint.mul (Bigint.mul a bb) c));
    prop "distributivity" ~count:120 triple3 (fun (a, bb, c) ->
        Bigint.equal
          (Bigint.mul a (Bigint.add bb c))
          (Bigint.add (Bigint.mul a bb) (Bigint.mul a c)));
    prop "divmod identity" pair2 (fun (a, bb) ->
        QCheck2.assume (not (Bigint.is_zero bb));
        let q, r = Bigint.divmod a bb in
        Bigint.equal a (Bigint.add (Bigint.mul q bb) r)
        && Bigint.compare (Bigint.abs r) (Bigint.abs bb) < 0
        && (Bigint.is_zero r || Bigint.sign r = Bigint.sign a));
    prop "euclidean remainder range" pair2 (fun (a, bb) ->
        QCheck2.assume (not (Bigint.is_zero bb));
        let r = Bigint.emod a bb in
        Bigint.sign r >= 0 && Bigint.compare r (Bigint.abs bb) < 0);
    prop "gcd divides" pair2 (fun (a, bb) ->
        QCheck2.assume (not (Bigint.is_zero a) || not (Bigint.is_zero bb));
        let g = Bigint.gcd a bb in
        Bigint.is_zero (Bigint.emod a g) && Bigint.is_zero (Bigint.emod bb g));
    prop "egcd bezout" pair2 (fun (a, bb) ->
        let g, u, v = Bigint.extended_gcd a bb in
        Bigint.equal g (Bigint.add (Bigint.mul u a) (Bigint.mul v bb)));
    prop "mod_inverse correct" pair2 (fun (a, m) ->
        let m = Bigint.succ (Bigint.abs m) in
        match Bigint.mod_inverse a m with
        | Some inv ->
          Bigint.is_one m || Bigint.is_one (Bigint.emod (Bigint.mul inv a) m)
        | None -> not (Bigint.is_one (Bigint.gcd a m)));
    prop "mod_pow additive in exponent" ~count:60
      (QCheck2.Gen.triple arbitrary_bigint
         (QCheck2.Gen.int_range 0 40)
         (QCheck2.Gen.int_range 0 40))
      (fun (base, e1, e2) ->
        let m = Bigint.of_string "1000000000000000003" in
        Bigint.equal
          (Bigint.mod_pow base (Bigint.of_int (e1 + e2)) m)
          (Bigint.emod
             (Bigint.mul (Bigint.mod_pow base (i e1) m) (Bigint.mod_pow base (i e2) m))
             m));
    prop "mod_pow matches pow" ~count:60
      (QCheck2.Gen.pair (QCheck2.Gen.int_range (-50) 50) (QCheck2.Gen.int_range 0 20))
      (fun (base, e) ->
        let m = b "97" in
        Bigint.equal
          (Bigint.mod_pow (i base) (i e) m)
          (Bigint.emod (Bigint.pow (i base) e) m));
    prop "shift_left is multiply by power of two"
      (QCheck2.Gen.pair arbitrary_bigint (QCheck2.Gen.int_range 0 128))
      (fun (a, k) ->
        Bigint.equal (Bigint.shift_left a k) (Bigint.mul a (Bigint.pow Bigint.two k)));
    prop "shift_right inverts shift_left"
      (QCheck2.Gen.pair arbitrary_bigint (QCheck2.Gen.int_range 0 128))
      (fun (a, k) -> Bigint.equal (Bigint.shift_right (Bigint.shift_left a k) k) a);
    prop "bytes roundtrip" arbitrary_bigint (fun a ->
        let a = Bigint.abs a in
        Bigint.equal a (Bigint.of_bytes_be (Bigint.to_bytes_be a)));
    prop "karatsuba agrees with schoolbook" ~count:60
      (QCheck2.Gen.pair (QCheck2.Gen.int_range 600 1200) (QCheck2.Gen.int_range 600 1200))
      (fun (bits_a, bits_b) ->
        let source = Secmed_crypto.Prng.byte_source prng in
        let x = Bigint.random_bits source bits_a in
        let y = Bigint.random_bits source bits_b in
        let saved = !Bigint.karatsuba_threshold in
        Bigint.karatsuba_threshold := 4;
        let fast = Bigint.mul x y in
        Bigint.karatsuba_threshold := 1_000_000;
        let slow = Bigint.mul x y in
        Bigint.karatsuba_threshold := saved;
        Bigint.equal fast slow);
    prop "random_below in range" ~count:100
      (QCheck2.Gen.int_range 1 1_000_000)
      (fun bound ->
        let v = Bigint.random_below (Secmed_crypto.Prng.byte_source prng) (i bound) in
        Bigint.sign v >= 0 && Bigint.compare v (i bound) < 0);
    prop "montgomery mod_pow matches plain" ~count:150
      (QCheck2.Gen.triple (QCheck2.Gen.int_range 1 512) (QCheck2.Gen.int_range 1 256)
         (QCheck2.Gen.int_range 1 512))
      (fun (base_bits, exp_bits, mod_bits) ->
        let source = Secmed_crypto.Prng.byte_source prng in
        let base = Bigint.random_bits source base_bits in
        let e = Bigint.random_bits source exp_bits in
        let m =
          let candidate = Bigint.random_bits source mod_bits in
          let candidate = if Bigint.compare candidate Bigint.two < 0 then Bigint.of_int 3 else candidate in
          if Bigint.is_even candidate then Bigint.succ candidate else candidate
        in
        Bigint.equal (Bigint.mod_pow base e m) (Bigint.mod_pow_plain (Bigint.emod base m) e m));
    prop "montgomery handles even moduli via fallback" ~count:60
      (QCheck2.Gen.pair (QCheck2.Gen.int_range 1 200) (QCheck2.Gen.int_range 1 100))
      (fun (base_bits, exp_bits) ->
        let source = Secmed_crypto.Prng.byte_source prng in
        let base = Bigint.random_bits source base_bits in
        let e = Bigint.random_bits source exp_bits in
        let m = Bigint.shift_left (Bigint.succ (Bigint.random_bits source 64)) 1 in
        Bigint.equal (Bigint.mod_pow base e m) (Bigint.mod_pow_plain (Bigint.emod base m) e m));
    prop "Ctx.mod_pow matches plain" ~count:150
      (QCheck2.Gen.triple (QCheck2.Gen.int_range 1 512) (QCheck2.Gen.int_range 1 256)
         (QCheck2.Gen.int_range 1 512))
      (fun (base_bits, exp_bits, mod_bits) ->
        (* Both kinds: odd moduli take the Montgomery kind, even ones the
           Plain fallback — the answers must be indistinguishable. *)
        let source = Secmed_crypto.Prng.byte_source prng in
        let base = Bigint.random_bits source base_bits in
        let e = Bigint.random_bits source exp_bits in
        let m = Bigint.succ (Bigint.random_bits source mod_bits) in
        let ctx = Bigint.Ctx.create m in
        Bigint.equal (Bigint.Ctx.mod_pow ctx base e)
          (Bigint.mod_pow_plain (Bigint.emod base m) e m));
    prop "Ctx montgomery-domain roundtrip and mul" ~count:100
      (QCheck2.Gen.triple (QCheck2.Gen.int_range 1 400) (QCheck2.Gen.int_range 1 400)
         (QCheck2.Gen.int_range 2 400))
      (fun (a_bits, b_bits, mod_bits) ->
        let source = Secmed_crypto.Prng.byte_source prng in
        let m =
          let c = Bigint.random_bits source mod_bits in
          let c = if Bigint.compare c (i 3) < 0 then i 3 else c in
          if Bigint.is_even c then Bigint.succ c else c
        in
        let ctx = Bigint.Ctx.create m in
        let a = Bigint.emod (Bigint.random_bits source a_bits) m in
        let bb = Bigint.emod (Bigint.random_bits source b_bits) m in
        let a_m = Bigint.Ctx.to_mont ctx a in
        let b_m = Bigint.Ctx.to_mont ctx bb in
        Bigint.equal (Bigint.Ctx.of_mont ctx a_m) a
        && Bigint.equal
             (Bigint.Ctx.of_mont ctx (Bigint.Ctx.mont_mul ctx a_m b_m))
             (Bigint.emod (Bigint.mul a bb) m)
        && Bigint.Ctx.mont_equal (Bigint.Ctx.to_mont ctx Bigint.one) (Bigint.Ctx.mont_one ctx));
    prop "Ctx.mont_pow matches plain" ~count:100
      (QCheck2.Gen.triple (QCheck2.Gen.int_range 1 400) (QCheck2.Gen.int_range 1 128)
         (QCheck2.Gen.int_range 2 400))
      (fun (base_bits, exp_bits, mod_bits) ->
        let source = Secmed_crypto.Prng.byte_source prng in
        let m =
          let c = Bigint.random_bits source mod_bits in
          let c = if Bigint.compare c (i 3) < 0 then i 3 else c in
          if Bigint.is_even c then Bigint.succ c else c
        in
        let ctx = Bigint.Ctx.create m in
        let base = Bigint.emod (Bigint.random_bits source base_bits) m in
        let e = Bigint.random_bits source exp_bits in
        Bigint.equal
          (Bigint.Ctx.of_mont ctx (Bigint.Ctx.mont_pow ctx (Bigint.Ctx.to_mont ctx base) e))
          (Bigint.mod_pow_plain base e m));
    prop "Fixed_base.pow matches plain" ~count:100
      (QCheck2.Gen.triple (QCheck2.Gen.int_range 1 300) (QCheck2.Gen.int_range 1 300)
         (QCheck2.Gen.int_range 8 300))
      (fun (base_bits, exp_bits, mod_bits) ->
        let source = Secmed_crypto.Prng.byte_source prng in
        let m =
          let c = Bigint.random_bits source mod_bits in
          let c = if Bigint.compare c (i 3) < 0 then i 3 else c in
          if Bigint.is_even c then Bigint.succ c else c
        in
        let base = Bigint.random_bits source base_bits in
        let e = Bigint.random_bits source exp_bits in
        let fb = Bigint.Fixed_base.create ~base ~modulus:m ~bits:300 in
        Bigint.equal (Bigint.Fixed_base.pow fb e)
          (Bigint.mod_pow_plain (Bigint.emod base m) e m));
    prop "transparent cache: hit equals cold result" ~count:60
      (QCheck2.Gen.triple (QCheck2.Gen.int_range 1 256) (QCheck2.Gen.int_range 17 128)
         (QCheck2.Gen.int_range 64 256))
      (fun (base_bits, exp_bits, mod_bits) ->
        let source = Secmed_crypto.Prng.byte_source prng in
        let base = Bigint.random_bits source base_bits in
        let e = Bigint.random_bits source exp_bits in
        let m =
          let c = Bigint.random_bits source mod_bits in
          let c = if Bigint.compare c (i 3) < 0 then i 3 else c in
          if Bigint.is_even c then Bigint.succ c else c
        in
        Bigint.ctx_cache_reset ();
        let cold = Bigint.mod_pow base e m in
        let warm = Bigint.mod_pow base e m in
        Bigint.equal cold warm && Bigint.equal cold (Bigint.mod_pow_plain (Bigint.emod base m) e m));
    prop "isqrt bounds" arbitrary_bigint (fun a ->
        let a = Bigint.abs a in
        let s = Bigint.isqrt a in
        Bigint.compare (Bigint.mul s s) a <= 0
        && Bigint.compare (Bigint.mul (Bigint.succ s) (Bigint.succ s)) a > 0);
    prop "is_square detects squares" arbitrary_bigint (fun a ->
        let a = Bigint.abs a in
        Bigint.is_square (Bigint.mul a a));
    prop "jacobi matches Euler criterion" ~count:80
      (QCheck2.Gen.pair (QCheck2.Gen.int_range 0 5000) (QCheck2.Gen.int_range 0 300))
      (fun (a, p_index) ->
        (* Odd primes: Euler's criterion a^((p-1)/2) = (a/p) mod p. *)
        let primes = [ 3; 5; 7; 11; 13; 101; 257; 1009; 65537; 1000003 ] in
        let p = List.nth primes (p_index mod List.length primes) in
        let jac = Bigint.jacobi (i a) (i p) in
        let euler =
          Bigint.mod_pow (i a) (i ((p - 1) / 2)) (i p)
        in
        let euler_sym =
          if Bigint.is_zero euler then 0
          else if Bigint.is_one euler then 1
          else -1
        in
        jac = euler_sym);
    prop "compare antisymmetric" pair2 (fun (a, bb) ->
        Bigint.compare a bb = -Bigint.compare bb a);
    prop "numbits bounds value" arbitrary_bigint (fun a ->
        let a = Bigint.abs a in
        let nb = Bigint.numbits a in
        if Bigint.is_zero a then nb = 0
        else
          Bigint.compare a (Bigint.pow Bigint.two nb) < 0
          && Bigint.compare a (Bigint.pow Bigint.two (nb - 1)) >= 0);
  ]

let () =
  Alcotest.run "bigint"
    [
      ( "unit",
        [
          Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
          Alcotest.test_case "of_string decimal" `Quick test_of_string_decimal;
          Alcotest.test_case "of_string hex" `Quick test_of_string_hex;
          Alcotest.test_case "of_string errors" `Quick test_of_string_errors;
          Alcotest.test_case "known product" `Quick test_known_product;
          Alcotest.test_case "known quotient" `Quick test_known_quotient;
          Alcotest.test_case "factorial 50" `Quick test_factorial;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "truncated division signs" `Quick test_truncated_division_signs;
          Alcotest.test_case "euclidean division" `Quick test_euclidean_division;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "numbits / testbit" `Quick test_numbits_testbit;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "extended gcd" `Quick test_extended_gcd;
          Alcotest.test_case "mod_inverse" `Quick test_mod_inverse;
          Alcotest.test_case "mod_pow" `Quick test_mod_pow;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
          Alcotest.test_case "montgomery edges" `Quick test_montgomery_edges;
          Alcotest.test_case "explicit context edges" `Quick test_ctx_edges;
          Alcotest.test_case "fixed-base edges" `Quick test_fixed_base_edges;
          Alcotest.test_case "context cache" `Quick test_ctx_cache;
          Alcotest.test_case "simultaneous multi-exponentiation" `Quick test_multi_exp;
          Alcotest.test_case "domain-local caches under stress" `Quick
            test_cache_domain_stress;
          Alcotest.test_case "infix operators" `Quick test_infix;
        ] );
      ("properties", props);
    ]

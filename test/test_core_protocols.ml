(* End-to-end tests of the paper's three delivery protocols and the two
   baselines, plus their building blocks (partitioning, polynomials),
   access control, and the machine-checked Table 1 leakage claims. *)

open Secmed_bigint
open Secmed_crypto
open Secmed_relalg
open Secmed_mediation
open Secmed_core

(* Reduced security parameters keep the suite fast; the protocols are
   parameter-independent. *)
let fast = { Env.group_bits = 160; paillier_bits = 384 }

let small_spec =
  {
    Workload.default with
    rows_left = 12;
    rows_right = 12;
    distinct_left = 6;
    distinct_right = 6;
    overlap = 3;
    extra_attrs = 1;
  }

let scenario ?(spec = small_spec) () = Workload.scenario ~params:fast spec

(* ------------------------------------------------------------------ *)
(* Das_partition. *)

let ints lo hi = List.init (hi - lo + 1) (fun i -> Value.Int (lo + i))

let strategies =
  [ Das_partition.Singleton; Das_partition.Equi_width 3; Das_partition.Equi_depth 3;
    Das_partition.Hash_buckets 3 ]

let test_partition_covers_active_domain () =
  let values = ints 10 29 in
  List.iter
    (fun strategy ->
      let table = Das_partition.build strategy ~relation:"R" ~attr:"a" values in
      List.iter
        (fun v ->
          match Das_partition.index_of_opt table v with
          | Some _ -> ()
          | None ->
            Alcotest.failf "%s: no partition for %s"
              (Das_partition.strategy_name strategy) (Value.to_string v))
        values)
    strategies

let test_partition_identifiers_unique () =
  List.iter
    (fun strategy ->
      let table = Das_partition.build strategy ~relation:"R" ~attr:"a" (ints 0 40) in
      let ids = List.map snd (Das_partition.entries table) in
      Alcotest.(check int)
        (Das_partition.strategy_name strategy)
        (List.length ids)
        (List.length (List.sort_uniq compare ids)))
    strategies

let test_partition_disjoint_within_table () =
  (* A value must fall into exactly one partition of its own table. *)
  List.iter
    (fun strategy ->
      let values = ints 0 20 in
      let table = Das_partition.build strategy ~relation:"R" ~attr:"a" values in
      List.iter
        (fun v ->
          let hits =
            List.filter
              (fun (p, _) -> Das_partition.overlap p (Das_partition.Value_set [ v ]))
              (Das_partition.entries table)
          in
          Alcotest.(check int)
            (Printf.sprintf "%s covers %s once" (Das_partition.strategy_name strategy)
               (Value.to_string v))
            1 (List.length hits))
        values)
    strategies

let test_partition_counts () =
  let values = ints 0 19 in
  let count strategy =
    Das_partition.partition_count (Das_partition.build strategy ~relation:"R" ~attr:"a" values)
  in
  Alcotest.(check int) "singleton" 20 (count Das_partition.Singleton);
  Alcotest.(check int) "equi-depth" 4 (count (Das_partition.Equi_depth 4));
  Alcotest.(check bool) "equi-width bounded" true (count (Das_partition.Equi_width 4) <= 4);
  Alcotest.(check bool) "hash buckets bounded" true (count (Das_partition.Hash_buckets 4) <= 4)

let test_partition_overlap_semantics () =
  let open Das_partition in
  Alcotest.(check bool) "intervals overlap" true (overlap (Interval (0, 5)) (Interval (5, 9)));
  Alcotest.(check bool) "intervals disjoint" false (overlap (Interval (0, 4)) (Interval (5, 9)));
  Alcotest.(check bool) "interval/value" true
    (overlap (Interval (0, 4)) (Value_set [ Value.Int 3 ]));
  Alcotest.(check bool) "value sets" true
    (overlap (Value_set [ Value.Str "a"; Value.Str "b" ]) (Value_set [ Value.Str "b" ]));
  Alcotest.(check bool) "value sets disjoint" false
    (overlap (Value_set [ Value.Str "a" ]) (Value_set [ Value.Str "b" ]))

let test_overlapping_pairs_brute_force () =
  let left = Das_partition.build (Das_partition.Equi_depth 3) ~relation:"R1" ~attr:"a" (ints 0 15) in
  let right = Das_partition.build (Das_partition.Equi_width 4) ~relation:"R2" ~attr:"a" (ints 8 30) in
  let pairs = Das_partition.overlapping_pairs left right in
  let brute =
    List.concat_map
      (fun (p1, i1) ->
        List.filter_map
          (fun (p2, i2) -> if Das_partition.overlap p1 p2 then Some (i1, i2) else None)
          (Das_partition.entries right))
      (Das_partition.entries left)
  in
  Alcotest.(check int) "same pair count" (List.length brute) (List.length pairs)

let test_partition_wire_roundtrip () =
  List.iter
    (fun strategy ->
      let table = Das_partition.build strategy ~relation:"R" ~attr:"a" (ints 0 12) in
      let table' = Das_partition.of_wire (Das_partition.to_wire table) in
      Alcotest.(check string) "relation" (Das_partition.relation table)
        (Das_partition.relation table');
      Alcotest.(check int) "entries"
        (Das_partition.partition_count table)
        (Das_partition.partition_count table');
      List.iter
        (fun v ->
          Alcotest.(check int) "same index"
            (Das_partition.index_of table v)
            (Das_partition.index_of table' v))
        (ints 0 12))
    strategies

let test_partition_string_domain () =
  let values = List.map (fun s -> Value.Str s) [ "ann"; "bob"; "cyd"; "dee"; "eve" ] in
  let table = Das_partition.build (Das_partition.Equi_depth 2) ~relation:"R" ~attr:"n" values in
  Alcotest.(check int) "two partitions" 2 (Das_partition.partition_count table);
  List.iter (fun v -> ignore (Das_partition.index_of table v)) values;
  Alcotest.check_raises "equi-width needs ints"
    (Invalid_argument "Das_partition: equi-width needs an integer domain") (fun () ->
      ignore (Das_partition.build (Das_partition.Equi_width 2) ~relation:"R" ~attr:"n" values))

let test_disclosure_bits () =
  let values = ints 0 15 in
  let bits strategy =
    Das_partition.disclosure_bits
      (Das_partition.build strategy ~relation:"R" ~attr:"a" values)
      values
  in
  let singleton = bits Das_partition.Singleton in
  let coarse = bits (Das_partition.Equi_depth 2) in
  let trivial = bits (Das_partition.Equi_depth 1) in
  Alcotest.(check (float 0.001)) "singleton = full entropy" 4.0 singleton;
  Alcotest.(check (float 0.001)) "one partition leaks nothing" 0.0 trivial;
  Alcotest.(check bool) "finer leaks more" true (singleton > coarse && coarse > trivial)

let test_partition_empty_domain () =
  let table = Das_partition.build Das_partition.Singleton ~relation:"R" ~attr:"a" [] in
  Alcotest.(check int) "no partitions" 0 (Das_partition.partition_count table);
  Alcotest.(check bool) "no index" true (Das_partition.index_of_opt table (Value.Int 1) = None)

(* ------------------------------------------------------------------ *)
(* Pm_poly. *)

let pm_key = lazy (Paillier.keygen (Prng.create ~seed:"pm-poly-tests") ~bits:384)

let test_poly_roots () =
  let sk = Lazy.force pm_key in
  let n = (Paillier.public sk).Paillier.n in
  let roots = List.map Bigint.of_int [ 3; 17; 99 ] in
  let p = Pm_poly.from_roots ~modulus:n roots in
  Alcotest.(check int) "degree" 3 (Pm_poly.degree p);
  List.iter
    (fun r -> Alcotest.(check bool) "vanishes at root" true (Bigint.is_zero (Pm_poly.eval p r)))
    roots;
  Alcotest.(check bool) "non-root" false (Bigint.is_zero (Pm_poly.eval p (Bigint.of_int 4)))

let test_poly_known_coefficients () =
  (* (2 - x)(3 - x) = 6 - 5x + x^2. *)
  let n = Bigint.of_int 1009 in
  let p = Pm_poly.from_roots ~modulus:n [ Bigint.of_int 2; Bigint.of_int 3 ] in
  Alcotest.(check (list string)) "coefficients" [ "6"; "1004"; "1" ]
    (List.map Bigint.to_string (Pm_poly.coefficients p))

let test_poly_empty_roots () =
  let n = Bigint.of_int 101 in
  let p = Pm_poly.from_roots ~modulus:n [] in
  Alcotest.(check int) "degree 0" 0 (Pm_poly.degree p);
  Alcotest.(check string) "constant one" "1" (Bigint.to_string (Pm_poly.eval p (Bigint.of_int 5)))

let test_poly_encrypted_eval () =
  let sk = Lazy.force pm_key in
  let pk = Paillier.public sk in
  let rng = Prng.of_int_seed 8 in
  let roots = List.map Bigint.of_int [ 11; 22; 33; 44 ] in
  let p = Pm_poly.from_roots ~modulus:pk.Paillier.n roots in
  let encrypted = Pm_poly.encrypt rng pk p in
  List.iter
    (fun x ->
      let x = Bigint.of_int x in
      let direct = Pm_poly.eval p x in
      let homomorphic = Paillier.decrypt sk (Pm_poly.eval_encrypted pk encrypted x) in
      Alcotest.(check string) "encrypted Horner = plaintext eval" (Bigint.to_string direct)
        (Bigint.to_string homomorphic);
      let naive = Paillier.decrypt sk (Pm_poly.eval_encrypted_naive rng pk encrypted x) in
      Alcotest.(check string) "naive = Horner" (Bigint.to_string direct) (Bigint.to_string naive))
    [ 11; 33; 5; 0; 100 ]

let test_poly_mask_and_add () =
  let sk = Lazy.force pm_key in
  let pk = Paillier.public sk in
  let rng = Prng.of_int_seed 9 in
  let roots = [ Bigint.of_int 7 ] in
  let p = Pm_poly.from_roots ~modulus:pk.Paillier.n roots in
  let encrypted = Pm_poly.encrypt rng pk p in
  let payload = Bigint.of_int 424242 in
  (* At a root, the mask vanishes and the payload survives. *)
  let at_root =
    Pm_poly.mask_and_add rng pk (Pm_poly.eval_encrypted pk encrypted (Bigint.of_int 7)) ~payload
  in
  Alcotest.(check string) "payload at root" "424242"
    (Bigint.to_string (Paillier.decrypt sk at_root));
  (* Away from a root, the decryption is (whp) not the payload. *)
  let away =
    Pm_poly.mask_and_add rng pk (Pm_poly.eval_encrypted pk encrypted (Bigint.of_int 8)) ~payload
  in
  Alcotest.(check bool) "masked away from root" true
    (not (Bigint.equal payload (Paillier.decrypt sk away)))

let test_root_of_value_deterministic () =
  Alcotest.(check bool) "same value same root" true
    (Bigint.equal (Pm_join.root_of_value (Value.Int 5)) (Pm_join.root_of_value (Value.Int 5)));
  Alcotest.(check bool) "distinct values distinct roots" true
    (not (Bigint.equal (Pm_join.root_of_value (Value.Int 5)) (Pm_join.root_of_value (Value.Int 6))));
  Alcotest.(check bool) "type-sensitive" true
    (not
       (Bigint.equal (Pm_join.root_of_value (Value.Int 5)) (Pm_join.root_of_value (Value.Str "5"))))

(* ------------------------------------------------------------------ *)
(* End-to-end protocol correctness. *)

let run_scheme ?spec scheme =
  let env, client, query = scenario ?spec () in
  Protocol.run_exn scheme env client ~query

let check_correct name outcome =
  if not (Outcome.correct outcome) then
    Alcotest.failf "%s: result differs from reference join\nresult:\n%s\nexact:\n%s" name
      (Relation.to_string outcome.Outcome.result)
      (Relation.to_string outcome.Outcome.exact)

let test_all_schemes_correct () =
  List.iter
    (fun scheme ->
      check_correct (Protocol.scheme_name scheme) (run_scheme scheme))
    Protocol.all_schemes

let test_das_all_strategies_correct () =
  List.iter
    (fun strategy ->
      check_correct
        (Das_partition.strategy_name strategy)
        (run_scheme (Protocol.Das (strategy, Das.Pair_index))))
    strategies

let test_das_nested_loop_agrees () =
  let a = run_scheme (Protocol.Das (Das_partition.Equi_depth 3, Das.Pair_index)) in
  let b = run_scheme (Protocol.Das (Das_partition.Equi_depth 3, Das.Nested_loop)) in
  check_correct "pair-index" a;
  check_correct "nested-loop" b;
  Alcotest.(check int) "same candidate set size" a.Outcome.client_received_tuples
    b.Outcome.client_received_tuples

let test_commutative_ids_variant () =
  let plain = run_scheme (Protocol.Commutative { use_ids = false }) in
  let ids = run_scheme (Protocol.Commutative { use_ids = true }) in
  check_correct "commutative" plain;
  check_correct "commutative-ids" ids;
  Alcotest.(check bool) "ids variant moves fewer bytes" true
    (Transcript.total_bytes ids.Outcome.transcript
    < Transcript.total_bytes plain.Outcome.transcript)

let test_pm_variants_agree () =
  (* Direct payload needs a larger plaintext space. *)
  let params = { Env.group_bits = 160; paillier_bits = 768 } in
  let spec = { small_spec with rows_left = 6; rows_right = 6; extra_attrs = 0 } in
  let env, client, query = Workload.scenario ~params spec in
  let direct = Protocol.run_exn (Protocol.Private_matching Pm_join.Direct_payload) env client ~query in
  let session = Protocol.run_exn (Protocol.Private_matching Pm_join.Session_keys) env client ~query in
  check_correct "pm-direct" direct;
  check_correct "pm-session" session;
  Alcotest.(check bool) "same result" true
    (Relation.equal_contents direct.Outcome.result session.Outcome.result)

let test_multiple_seeds () =
  List.iter
    (fun seed ->
      let spec = { small_spec with seed } in
      List.iter
        (fun scheme ->
          check_correct
            (Printf.sprintf "%s seed %d" (Protocol.scheme_name scheme) seed)
            (run_scheme ~spec scheme))
        Protocol.paper_schemes)
    [ 1; 2; 3 ]

let test_string_join_values () =
  let spec = { small_spec with value_kind = Workload.Strings } in
  List.iter
    (fun scheme ->
      check_correct (Protocol.scheme_name scheme) (run_scheme ~spec scheme))
    [ Protocol.Das (Das_partition.Equi_depth 3, Das.Pair_index);
      Protocol.Commutative { use_ids = false };
      Protocol.Private_matching Pm_join.Session_keys ]

let test_disjoint_domains () =
  let spec = { small_spec with overlap = 0 } in
  List.iter
    (fun scheme ->
      let o = run_scheme ~spec scheme in
      check_correct (Protocol.scheme_name scheme) o;
      Alcotest.(check int)
        (Protocol.scheme_name scheme ^ " empty result")
        0
        (Relation.cardinality o.Outcome.result))
    Protocol.paper_schemes

let test_full_overlap () =
  let spec = { small_spec with overlap = 6 } in
  List.iter
    (fun scheme -> check_correct (Protocol.scheme_name scheme) (run_scheme ~spec scheme))
    Protocol.paper_schemes

let test_duplicate_join_values () =
  (* Many rows per value exercise the Tup_i(a) set machinery. *)
  let spec = { small_spec with rows_left = 24; rows_right = 18; distinct_left = 4;
               distinct_right = 4; overlap = 2 } in
  List.iter
    (fun scheme -> check_correct (Protocol.scheme_name scheme) (run_scheme ~spec scheme))
    Protocol.paper_schemes

(* Composite join keys: the Section 8 extension. *)
let multi_attr_env () =
  let left =
    Relation.of_rows
      (Schema.of_list
         [ ("site", Value.Tstring); ("day", Value.Tint); ("reading", Value.Tint) ])
      [
        [ Value.Str "north"; Value.Int 1; Value.Int 10 ];
        [ Value.Str "north"; Value.Int 2; Value.Int 11 ];
        [ Value.Str "south"; Value.Int 1; Value.Int 12 ];
        [ Value.Str "south"; Value.Int 2; Value.Int 13 ];
        [ Value.Str "north"; Value.Int 1; Value.Int 14 ];
      ]
  in
  let right =
    Relation.of_rows
      (Schema.of_list
         [ ("site", Value.Tstring); ("day", Value.Tint); ("crew", Value.Tstring) ])
      [
        [ Value.Str "north"; Value.Int 1; Value.Str "alpha" ];
        [ Value.Str "south"; Value.Int 2; Value.Str "beta" ];
        [ Value.Str "west"; Value.Int 1; Value.Str "gamma" ];
        [ Value.Str "north"; Value.Int 3; Value.Str "delta" ];
      ]
  in
  (Env.two_source ~params:fast ~seed:5 ~left:("Readings", left) ~right:("Shifts", right) (),
   left, right)

let test_multi_attribute_join () =
  let env, left, right = multi_attr_env () in
  let client = Env.make_client env ~identity:"m" ~properties:[ [] ] in
  let query = "select * from Readings natural join Shifts" in
  (* (north,1) matches twice on the left, (south,2) once: 3 pairs. *)
  let g = Ground_truth.compute_keys left right ~join_attrs:[ "day"; "site" ] in
  Alcotest.(check int) "expected pairs" 3 g.Ground_truth.exact_join_pairs;
  List.iter
    (fun scheme ->
      let o = Protocol.run_exn scheme env client ~query in
      check_correct ("multi-attr " ^ Protocol.scheme_name scheme) o;
      Alcotest.(check int)
        ("multi-attr size " ^ Protocol.scheme_name scheme)
        3
        (Relation.cardinality o.Outcome.result))
    (Protocol.all_schemes
    @ [ Protocol.Das (Das_partition.Singleton, Das.Pair_index);
        Protocol.Das (Das_partition.Equi_depth 2, Das.Nested_loop) ])

let test_multi_attribute_leakage () =
  let env, left, right = multi_attr_env () in
  let client = Env.make_client env ~identity:"m2" ~properties:[ [] ] in
  let query = "select * from Readings natural join Shifts" in
  let g = Ground_truth.compute_keys left right ~join_attrs:[ "day"; "site" ] in
  let o = Protocol.run_exn (Protocol.Commutative { use_ids = false }) env client ~query in
  let claims = Leakage.verify o ~ground_truth:g in
  if not (Leakage.all_hold claims) then
    Alcotest.failf "multi-attribute leakage claims violated:\n%s"
      (Format.asprintf "%a" Leakage.pp_claims claims)

let test_join_key_module () =
  let k1 = Join_key.of_values [ Value.Int 1; Value.Str "a" ] in
  let k2 = Join_key.of_values [ Value.Int 1; Value.Str "a" ] in
  let k3 = Join_key.of_values [ Value.Int 1; Value.Str "b" ] in
  Alcotest.(check bool) "equal" true (Join_key.equal k1 k2);
  Alcotest.(check bool) "distinct" false (Join_key.equal k1 k3);
  Alcotest.(check bool) "encode injective" true
    (not (String.equal (Join_key.encode k1) (Join_key.encode k3)));
  Alcotest.(check int) "arity" 2 (Join_key.arity k1);
  Alcotest.check_raises "empty rejected" (Invalid_argument "Join_key.of_values: empty key")
    (fun () -> ignore (Join_key.of_values []))

let test_das_translator_settings () =
  let env, client, query = scenario () in
  let run setting = Das.run ~strategy:(Das_partition.Equi_depth 3) ~setting env client ~query in
  let client_o = run Das.Client_setting in
  let source_o = run Das.Source_setting in
  let mediator_o = run Das.Mediator_setting in
  check_correct "client setting" client_o;
  check_correct "source setting" source_o;
  check_correct "mediator setting" mediator_o;
  (* All settings produce the same candidate set (same index tables). *)
  Alcotest.(check int) "same superset" client_o.Outcome.client_received_tuples
    mediator_o.Outcome.client_received_tuples;
  (* Client setting: only the client sees partition structure. *)
  Alcotest.(check bool) "client sees partitions" true
    (Outcome.observed client_o.Outcome.client_observed "partitions-R1" <> None);
  Alcotest.(check bool) "mediator blind in client setting" true
    (Outcome.observed client_o.Outcome.mediator_observed "partitions-R1" = None);
  (* Source setting: S1 learns S2's partition structure, mediator none. *)
  Alcotest.(check bool) "S1 sees S2 partitions" true
    (Option.bind
       (List.assoc_opt 1 source_o.Outcome.sources_observed)
       (List.assoc_opt "partitions-R2")
    <> None);
  Alcotest.(check bool) "mediator blind in source setting" true
    (Outcome.observed source_o.Outcome.mediator_observed "partitions-R1" = None);
  (* Mediator setting: the mediator holds plaintext tables and can
     approximate values. *)
  Alcotest.(check bool) "mediator sees partitions" true
    (Outcome.observed mediator_o.Outcome.mediator_observed "partitions-R1" <> None);
  Alcotest.(check bool) "mediator approximates values" true
    (Option.value ~default:0
       (Outcome.observed mediator_o.Outcome.mediator_observed "approx-value-centibits-R1")
    > 0);
  (* Interaction counts: the client sends only the query in the source
     and mediator settings, twice in the client setting. *)
  let sends o = Transcript.sends_by o.Outcome.transcript Transcript.Client in
  Alcotest.(check int) "client setting: 2 sends" 2 (sends client_o);
  Alcotest.(check int) "source setting: 1 send" 1 (sends source_o);
  Alcotest.(check int) "mediator setting: 1 send" 1 (sends mediator_o)

let test_superset_behaviour () =
  let env, client, query = scenario () in
  let das = Protocol.run_exn (Protocol.Das (Das_partition.Equi_depth 2, Das.Pair_index)) env client ~query in
  let commutative = Protocol.run_exn (Protocol.Commutative { use_ids = false }) env client ~query in
  Alcotest.(check bool) "das superset factor >= 1" true (Outcome.superset_factor das >= 1.0);
  Alcotest.(check (float 0.0001)) "commutative exact" 1.0 (Outcome.superset_factor commutative);
  (* Finer DAS partitions shrink the superset. *)
  let das_fine =
    Protocol.run_exn (Protocol.Das (Das_partition.Singleton, Das.Pair_index)) env client ~query
  in
  Alcotest.(check bool) "singleton minimizes superset" true
    (das_fine.Outcome.client_received_tuples <= das.Outcome.client_received_tuples)

let test_residual_query_clauses () =
  let left, right = Workload.generate small_spec in
  let env = Env.two_source ~params:fast ~left:("R1", left) ~right:("R2", right) () in
  let client = Env.make_client env ~identity:"c" ~properties:[ [] ] in
  let query = "select distinct a_join from R1 natural join R2 where a_join >= 0" in
  List.iter
    (fun scheme ->
      let o = Protocol.run_exn scheme env client ~query in
      check_correct (Protocol.scheme_name scheme) o;
      Alcotest.(check (list string)) "projected schema" [ "R1.a_join" ]
        (Schema.names (Relation.schema o.Outcome.result)))
    Protocol.paper_schemes

(* ------------------------------------------------------------------ *)
(* Successive joins over three sources (Section 8 extension). *)

let three_source_env () =
  let a =
    Relation.of_rows
      (Schema.of_list [ ("k", Value.Tint); ("x", Value.Tint) ])
      [ [ Value.Int 1; Value.Int 10 ]; [ Value.Int 2; Value.Int 20 ];
        [ Value.Int 3; Value.Int 30 ] ]
  in
  let bb =
    Relation.of_rows
      (Schema.of_list [ ("k", Value.Tint); ("y", Value.Tint) ])
      [ [ Value.Int 1; Value.Int 7 ]; [ Value.Int 2; Value.Int 8 ];
        [ Value.Int 2; Value.Int 9 ]; [ Value.Int 4; Value.Int 7 ] ]
  in
  let c =
    Relation.of_rows
      (Schema.of_list [ ("y", Value.Tint); ("tag", Value.Tstring) ])
      [ [ Value.Int 7; Value.Str "seven" ]; [ Value.Int 8; Value.Str "eight" ];
        [ Value.Int 99; Value.Str "unused" ] ]
  in
  let entry relation source rel =
    { Catalog.relation; source; schema = Relation.schema rel; source_relation = relation }
  in
  let env =
    Env.make ~params:fast ~seed:13
      ~catalog:(Catalog.make [ entry "A" 1 a; entry "B" 2 bb; entry "C" 3 c ])
      ~sources:
        [
          { Env.source_id = 1; relations = [ ("A", a) ]; policy = Policy.open_policy;
            advertised = [] };
          { Env.source_id = 2; relations = [ ("B", bb) ]; policy = Policy.open_policy;
            advertised = [] };
          { Env.source_id = 3; relations = [ ("C", c) ]; policy = Policy.open_policy;
            advertised = [] };
        ]
      ()
  in
  (env, a, bb, c)

let reference_three_way a bb c =
  (* Unqualified chained join, as Multi_join's client computes it. *)
  Relation.natural_join (Relation.natural_join a bb) c

let test_successive_joins () =
  let env, a, bb, c = three_source_env () in
  let client = Env.make_client env ~identity:"chain" ~properties:[ [] ] in
  let chain =
    Multi_join.run env client ~query:"select * from A natural join B natural join C"
  in
  Alcotest.(check int) "two rounds" 2 (List.length chain.Multi_join.stages);
  Alcotest.(check bool) "chain correct" true (Multi_join.correct chain);
  let reference = reference_three_way a bb c in
  Alcotest.(check int) "expected size" (Relation.cardinality reference)
    (Relation.cardinality chain.Multi_join.result);
  Alcotest.(check bool) "matches plaintext three-way join" true
    (Relation.equal_contents reference
       (Relation.make
          (Relation.schema reference)
          (Relation.tuples chain.Multi_join.result)))

let test_successive_joins_all_schemes () =
  let env, a, bb, c = three_source_env () in
  let client = Env.make_client env ~identity:"chain2" ~properties:[ [] ] in
  let reference = reference_three_way a bb c in
  List.iter
    (fun scheme ->
      let chain =
        Multi_join.run ~scheme env client
          ~query:"select * from A natural join B natural join C"
      in
      Alcotest.(check bool)
        ("chain with " ^ Protocol.scheme_name scheme)
        true (Multi_join.correct chain);
      Alcotest.(check int)
        ("size with " ^ Protocol.scheme_name scheme)
        (Relation.cardinality reference)
        (Relation.cardinality chain.Multi_join.result))
    Protocol.paper_schemes

let test_successive_joins_residuals () =
  let env, _, _, _ = three_source_env () in
  let client = Env.make_client env ~identity:"chain3" ~properties:[ [] ] in
  let chain =
    Multi_join.run env client
      ~query:"select distinct tag from A natural join B natural join C where x < 25"
  in
  Alcotest.(check bool) "chain correct" true (Multi_join.correct chain);
  Alcotest.(check (list string)) "projected schema"
    (Schema.names (Relation.schema chain.Multi_join.result))
    (Schema.names (Relation.schema chain.Multi_join.exact));
  (* k=1 -> y=7 -> seven; k=2 (x=20) -> y in {8,9} -> eight. *)
  Alcotest.(check int) "distinct tags" 2 (Relation.cardinality chain.Multi_join.result)

let test_successive_joins_unsupported () =
  let env, _, _, _ = three_source_env () in
  let client = Env.make_client env ~identity:"chain4" ~properties:[ [] ] in
  let rejects query =
    match Multi_join.run env client ~query with
    | exception Multi_join.Unsupported _ -> ()
    | _ -> Alcotest.failf "should reject %S" query
  in
  rejects "select * from A";
  rejects "select * from A join B on A.k = B.k natural join C";
  rejects "select A.x from A natural join B natural join C"

(* ------------------------------------------------------------------ *)
(* Set operations (Section 8 extension). *)

let setop_env () =
  let schema = Schema.of_list [ ("part", Value.Tstring); ("qty", Value.Tint) ] in
  let left =
    Relation.of_rows schema
      [ [ Value.Str "bolt"; Value.Int 5 ]; [ Value.Str "nut"; Value.Int 3 ];
        [ Value.Str "washer"; Value.Int 9 ]; [ Value.Str "bolt"; Value.Int 5 ] ]
  in
  let right =
    Relation.of_rows schema
      [ [ Value.Str "bolt"; Value.Int 5 ]; [ Value.Str "nut"; Value.Int 7 ];
        [ Value.Str "gear"; Value.Int 1 ] ]
  in
  (Env.two_source ~params:fast ~seed:21 ~left:("Stock", left) ~right:("Order", right) (),
   left, right)

let run_setop ?on op =
  let env, _, _ = setop_env () in
  let client = Env.make_client env ~identity:"ops" ~properties:[ [] ] in
  Set_ops.run ?on env client op ~left:"Stock" ~right:"Order"

let test_intersection () =
  let o = run_setop Set_ops.Intersection in
  check_correct "intersection" o;
  (* Only (bolt,5) appears in both, once (set semantics). *)
  Alcotest.(check int) "one common tuple" 1 (Relation.cardinality o.Outcome.result);
  (* Leakage claims: the mediator learns the (whole-tuple) key-set sizes. *)
  let _, left, right = setop_env () in
  let g = Ground_truth.compute_keys left right ~join_attrs:[ "part"; "qty" ] in
  let claims = Leakage.verify o ~ground_truth:g in
  if claims = [] || not (Leakage.all_hold claims) then
    Alcotest.failf "intersection leakage claims violated:\n%s"
      (Format.asprintf "%a" Leakage.pp_claims claims)

let test_difference () =
  let o = run_setop Set_ops.Difference in
  check_correct "difference" o;
  (* Distinct left tuples not in right: (nut,3) and (washer,9). *)
  Alcotest.(check int) "two remaining" 2 (Relation.cardinality o.Outcome.result)

let test_semi_join () =
  (* On the common attributes (whole layout) this equals intersection with
     bag semantics; restrict to the part attribute for a real semi-join. *)
  let o = run_setop ~on:[ "part" ] Set_ops.Semi_join in
  check_correct "semi-join" o;
  (* Stock tuples whose part occurs in Order: bolt x2, nut. *)
  Alcotest.(check int) "matched rows" 3 (Relation.cardinality o.Outcome.result)

let test_setop_layout_mismatch () =
  let left =
    Relation.of_rows (Schema.of_list [ ("a", Value.Tint) ]) [ [ Value.Int 1 ] ]
  in
  let right =
    Relation.of_rows (Schema.of_list [ ("a", Value.Tint); ("b", Value.Tint) ])
      [ [ Value.Int 1; Value.Int 2 ] ]
  in
  let env = Env.two_source ~params:fast ~seed:3 ~left:("L", left) ~right:("R", right) () in
  let client = Env.make_client env ~identity:"x" ~properties:[ [] ] in
  match Set_ops.run env client Set_ops.Intersection ~left:"L" ~right:"R" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "layout mismatch must be rejected"

let test_setop_right_source_ships_no_tuples () =
  (* The lean protocol: S2 transmits only fixed-size hashes, so its
     outbound volume is far below the full join protocol's. *)
  let env, _, _ = setop_env () in
  let client = Env.make_client env ~identity:"t" ~properties:[ [] ] in
  let semi = Set_ops.run ~on:[ "part" ] env client Set_ops.Semi_join ~left:"Stock" ~right:"Order" in
  let join =
    Protocol.run_exn (Protocol.Commutative { use_ids = false }) env client
      ~query:"select * from Stock natural join Order"
  in
  let sent o = Transcript.bytes_sent_by o.Outcome.transcript (Transcript.Source 2) in
  Alcotest.(check bool) "S2 sends less in the semi-join" true (sent semi < sent join)

(* ------------------------------------------------------------------ *)
(* DAS exposed internals. *)

let das_internal_env () =
  let prng = Prng.of_int_seed 71 in
  let group = Group.default ~bits:160 in
  let sk = Elgamal.keygen prng group in
  (prng, sk)

let test_das_encrypt_relation_internals () =
  let prng, sk = das_internal_env () in
  let relation =
    Relation.of_rows
      (Schema.of_list [ ("k", Value.Tint); ("v", Value.Tint) ])
      [ [ Value.Int 1; Value.Int 10 ]; [ Value.Int 2; Value.Int 20 ] ]
  in
  let table =
    Das_partition.build Das_partition.Singleton ~relation:"T" ~attr:"k"
      (Relation.column relation "k")
  in
  let er =
    Das.encrypt_relation prng (Elgamal.public sk) [ table ] ~join_attrs:[ "k" ] relation
  in
  Alcotest.(check int) "rows" 2 (List.length er.Das.rows);
  Alcotest.(check bool) "size accounted" true (er.Das.wire_size > 0);
  (* Each etuple decrypts back to its row. *)
  List.iter
    (fun (ct, _) ->
      match Secmed_crypto.Hybrid.decrypt sk ct with
      | Some blob -> ignore (Tuple.decode blob)
      | None -> Alcotest.fail "etuple must decrypt")
    er.Das.rows;
  (* Table-count mismatch is rejected. *)
  match Das.encrypt_relation prng (Elgamal.public sk) [] ~join_attrs:[ "k" ] relation with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing index table must be rejected"

let test_das_server_condition_shape () =
  let domain = ints 0 7 in
  let t1 = Das_partition.build (Das_partition.Equi_depth 2) ~relation:"R1" ~attr:"a" domain in
  let t2 = Das_partition.build (Das_partition.Equi_depth 2) ~relation:"R2" ~attr:"a" domain in
  let cond = Das.server_condition ~left_tables:[ t1 ] ~right_tables:[ t2 ] in
  (* 2x2 partitions over the same domain: the diagonal pairs overlap. *)
  Alcotest.(check int) "condition size"
    (2 * List.length (Das_partition.overlapping_pairs t1 t2))
    (Predicate.size cond);
  let pairs = Das.server_query_pairs ~left_tables:[ t1 ] ~right_tables:[ t2 ] in
  Alcotest.(check int) "one attribute" 1 (List.length pairs);
  (* No pairs -> empty candidate set regardless of rows. *)
  let prng, sk = das_internal_env () in
  let relation =
    Relation.of_rows (Schema.of_list [ ("a", Value.Tint) ]) [ [ Value.Int 1 ] ]
  in
  let table = Das_partition.build Das_partition.Singleton ~relation:"X" ~attr:"a"
      (Relation.column relation "a") in
  let er = Das.encrypt_relation prng (Elgamal.public sk) [ table ] ~join_attrs:[ "a" ] relation in
  Alcotest.(check int) "no compatible pairs" 0
    (List.length (Das.server_join Das.Pair_index [ [] ] er er))

(* ------------------------------------------------------------------ *)
(* DAS condition translation and the selection protocol. *)

let translate_tables domain strategy =
  let table = Das_partition.build strategy ~relation:"T" ~attr:"a" domain in
  fun name -> if String.equal name "a" then Some table else None

(* Soundness oracle: every domain value satisfying the plaintext condition
   must fall in a partition kept by the server condition. *)
let check_translation_sound domain strategy predicate =
  let tables = translate_tables domain strategy in
  let server = Das_translate.translate ~tables predicate in
  let table = Option.get (tables "a") in
  let plain_schema = Schema.of_list [ ("a", Value.Tint) ] in
  let index_schema = Schema.of_list [ ("idx_a", Value.Tint) ] in
  List.for_all
    (fun v ->
      let satisfies =
        Predicate.eval plain_schema (Tuple.of_list [ v ]) predicate
      in
      (not satisfies)
      ||
      let index = Das_partition.index_of table v in
      Predicate.eval index_schema (Tuple.of_list [ Value.Int index ]) server)
    domain

let test_translate_atoms_sound () =
  let domain = ints 0 31 in
  let open Predicate in
  let predicates =
    [ eq_const "a" (Value.Int 7);
      Cmp (Lt, Attr "a", Const (Value.Int 13));
      Cmp (Ge, Attr "a", Const (Value.Int 20));
      Cmp (Ne, Attr "a", Const (Value.Int 7));
      Cmp (Gt, Const (Value.Int 9), Attr "a");
      In (Attr "a", [ Value.Int 1; Value.Int 30 ]);
      Not (In (Attr "a", [ Value.Int 1; Value.Int 30 ]));
      And (Cmp (Ge, Attr "a", Const (Value.Int 5)), Cmp (Le, Attr "a", Const (Value.Int 10)));
      Or (eq_const "a" (Value.Int 0), eq_const "a" (Value.Int 31));
      Not (And (Cmp (Lt, Attr "a", Const (Value.Int 9)), Cmp (Gt, Attr "a", Const (Value.Int 3))));
      True;
      Not True ]
  in
  List.iter
    (fun strategy ->
      List.iteri
        (fun i p ->
          if not (check_translation_sound domain strategy p) then
            Alcotest.failf "%s: predicate %d translated unsoundly"
              (Das_partition.strategy_name strategy) i)
        predicates)
    strategies

let test_translate_precision () =
  (* With singleton partitions the translation is exact for equality. *)
  let domain = ints 0 9 in
  let tables = translate_tables domain Das_partition.Singleton in
  let server = Das_translate.translate ~tables (Predicate.eq_const "a" (Value.Int 4)) in
  (match server with
   | Predicate.In (_, [ Value.Int _ ]) -> ()
   | _ -> Alcotest.failf "expected a single-id IN, got %s" (Predicate.to_string server));
  (* Unknown attributes translate to True (sound). *)
  let server = Das_translate.translate ~tables (Predicate.eq_const "ghost" (Value.Int 1)) in
  Alcotest.(check string) "unknown attr" "true" (Predicate.to_string server);
  (* Unsatisfiable conditions collapse to False. *)
  let server = Das_translate.translate ~tables (Predicate.eq_const "a" (Value.Int 99)) in
  Alcotest.(check string) "out of domain" "false" (Predicate.to_string server)

let prop_translation_sound =
  let prng = Secmed_crypto.Prng.of_int_seed 55 in
  let gen_atom =
    QCheck2.Gen.(
      let* op = oneofl [ Predicate.Eq; Ne; Lt; Le; Gt; Ge ] in
      let* v = int_range (-5) 40 in
      return (Predicate.Cmp (op, Predicate.Attr "a", Predicate.Const (Value.Int v))))
  in
  let rec gen_pred depth =
    if depth = 0 then gen_atom
    else
      QCheck2.Gen.(
        let* shape = int_range 0 3 in
        match shape with
        | 0 -> gen_atom
        | 1 ->
          let* a = gen_pred (depth - 1) and* b = gen_pred (depth - 1) in
          return (Predicate.And (a, b))
        | 2 ->
          let* a = gen_pred (depth - 1) and* b = gen_pred (depth - 1) in
          return (Predicate.Or (a, b))
        | _ ->
          let* a = gen_pred (depth - 1) in
          return (Predicate.Not a))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random predicates translate soundly" ~count:200
       (QCheck2.Gen.pair (gen_pred 3) (QCheck2.Gen.int_range 1 6))
       (fun (predicate, k) ->
         let size = 8 + Secmed_crypto.Prng.uniform_int prng 24 in
         let domain = ints 0 (size - 1) in
         List.for_all
           (fun strategy -> check_translation_sound domain strategy predicate)
           [ Das_partition.Singleton; Das_partition.Equi_depth k;
             Das_partition.Equi_width k; Das_partition.Hash_buckets k ]))

let select_env () =
  let inventory =
    Relation.of_rows
      (Schema.of_list
         [ ("sku", Value.Tint); ("price", Value.Tint); ("label", Value.Tstring) ])
      (List.init 20 (fun i ->
           [ Value.Int i; Value.Int (10 * i); Value.Str (if i mod 2 = 0 then "even" else "odd") ]))
  in
  let dummy = Relation.of_rows (Schema.of_list [ ("x", Value.Tint) ]) [ [ Value.Int 0 ] ] in
  Env.two_source ~params:fast ~seed:29 ~left:("Inventory", inventory) ~right:("Dummy", dummy) ()

let run_select ?strategy query =
  let env = select_env () in
  let client = Env.make_client env ~identity:"sel" ~properties:[ [] ] in
  Select_query.run ?strategy env client ~query

let test_select_query_end_to_end () =
  List.iter
    (fun query ->
      List.iter
        (fun strategy ->
          let o = run_select ~strategy query in
          check_correct (query ^ " / " ^ Das_partition.strategy_name strategy) o)
        strategies)
    [ "select * from Inventory where price < 50";
      "select * from Inventory where price >= 120 and price <= 160";
      "select sku from Inventory where label = 'even' and price > 100";
      "select * from Inventory where sku in (1, 5, 19)";
      "select * from Inventory where not (price < 180)";
      "select distinct label from Inventory" ]

let test_select_query_superset () =
  (* Coarse partitions return a superset; the count is visible to the
     mediator and bounded below by the true result. *)
  let o = run_select ~strategy:(Das_partition.Equi_depth 2) "select * from Inventory where price < 30" in
  check_correct "superset run" o;
  let exact = Relation.cardinality o.Outcome.exact in
  Alcotest.(check bool) "superset" true (o.Outcome.client_received_tuples >= exact);
  let fine = run_select ~strategy:Das_partition.Singleton "select * from Inventory where price < 30" in
  Alcotest.(check int) "singleton is tight" exact fine.Outcome.client_received_tuples

let test_select_query_unsupported () =
  let rejects query =
    match run_select query with
    | exception Select_query.Unsupported _ -> ()
    | _ -> Alcotest.failf "should reject %S" query
  in
  rejects "select * from Inventory natural join Dummy";
  rejects "select count(*) from Inventory";
  rejects "select * from Ghost"

(* ------------------------------------------------------------------ *)
(* Encrypted aggregation (related-work query class, Section 7). *)

let agg_env () =
  let purchases =
    Relation.of_rows
      (Schema.of_list [ ("cust", Value.Tint); ("segment", Value.Tstring) ])
      [ [ Value.Int 1; Value.Str "gold" ]; [ Value.Int 2; Value.Str "silver" ];
        [ Value.Int 3; Value.Str "gold" ]; [ Value.Int 9; Value.Str "none" ] ]
  in
  let orders =
    Relation.of_rows
      (Schema.of_list [ ("cust", Value.Tint); ("amount", Value.Tint) ])
      [ [ Value.Int 1; Value.Int 100 ]; [ Value.Int 1; Value.Int 50 ];
        [ Value.Int 2; Value.Int 70 ]; [ Value.Int 3; Value.Int 10 ];
        [ Value.Int 7; Value.Int 999 ] ]
  in
  Env.two_source ~params:fast ~seed:17 ~left:("Customers", purchases)
    ~right:("Orders", orders) ()

let run_agg ?strategy query =
  let env = agg_env () in
  let client = Env.make_client env ~identity:"agg" ~properties:[ [] ] in
  Aggregate_join.run ?strategy env client ~query

let test_aggregate_scalar () =
  let o = run_agg "select count(*), sum(amount) from Customers natural join Orders" in
  check_correct "scalar aggregates" o;
  match Relation.tuples o.Outcome.result with
  | [ t ] ->
    (* Matching pairs: cust 1 (2 orders), 2 (1), 3 (1) -> count 4, sum 230. *)
    Alcotest.(check string) "count" "4" (Value.to_string (Tuple.get t 0));
    Alcotest.(check string) "sum" "230" (Value.to_string (Tuple.get t 1))
  | _ -> Alcotest.fail "expected one row"

let test_aggregate_grouped () =
  let o =
    run_agg
      "select cust, count(*), sum(amount) as spent, min(amount), max(amount), avg(amount) \
       from Customers natural join Orders group by cust"
  in
  check_correct "grouped aggregates" o;
  Alcotest.(check int) "three groups" 3 (Relation.cardinality o.Outcome.result);
  (* Leakage: the mediator derives the same quantities as in Listing 3. *)
  let purchases_g =
    let left =
      Relation.of_rows
        (Schema.of_list [ ("cust", Value.Tint); ("segment", Value.Tstring) ])
        [ [ Value.Int 1; Value.Str "gold" ]; [ Value.Int 2; Value.Str "silver" ];
          [ Value.Int 3; Value.Str "gold" ]; [ Value.Int 9; Value.Str "none" ] ]
    in
    let right =
      Relation.of_rows
        (Schema.of_list [ ("cust", Value.Tint); ("amount", Value.Tint) ])
        [ [ Value.Int 1; Value.Int 100 ]; [ Value.Int 1; Value.Int 50 ];
          [ Value.Int 2; Value.Int 70 ]; [ Value.Int 3; Value.Int 10 ];
          [ Value.Int 7; Value.Int 999 ] ]
    in
    Ground_truth.compute left right ~join_attr:"cust"
  in
  let claims = Leakage.verify o ~ground_truth:purchases_g in
  if claims = [] || not (Leakage.all_hold claims) then
    Alcotest.failf "aggregate leakage claims violated:\n%s"
      (Format.asprintf "%a" Leakage.pp_claims claims)

let test_aggregate_left_side_column () =
  (* Aggregating a column of the left relation (min over segment strings
     is rejected; use min over cust ints on the left). *)
  let o = run_agg "select min(cust), count(*) from Customers natural join Orders" in
  check_correct "left-side aggregate" o

let test_aggregate_homomorphic () =
  let o =
    run_agg ~strategy:Aggregate_join.Homomorphic
      "select count(*), sum(amount) from Customers natural join Orders"
  in
  check_correct "homomorphic aggregates" o;
  (* The client receives exactly one ciphertext per aggregate. *)
  Alcotest.(check (option int)) "ciphertexts" (Some 2)
    (Outcome.observed o.Outcome.client_observed "ciphertexts-received");
  (* Paillier additions actually happened at the mediator. *)
  Alcotest.(check bool) "homomorphic additions" true
    (Option.value ~default:0
       (List.assoc_opt Secmed_crypto.Counters.Homomorphic_add o.Outcome.counters)
    > 0)

let test_aggregate_homomorphic_unsupported () =
  let rejects ?strategy query =
    match run_agg ?strategy query with
    | exception Aggregate_join.Unsupported _ -> ()
    | _ -> Alcotest.failf "should reject %S" query
  in
  rejects ~strategy:Aggregate_join.Homomorphic
    "select cust, sum(amount) from Customers natural join Orders group by cust";
  rejects ~strategy:Aggregate_join.Homomorphic
    "select min(amount) from Customers natural join Orders";
  (* Duplicate left join keys break the c1 = 1 precondition. *)
  let dup =
    Relation.of_rows
      (Schema.of_list [ ("cust", Value.Tint); ("segment", Value.Tstring) ])
      [ [ Value.Int 1; Value.Str "a" ]; [ Value.Int 1; Value.Str "b" ] ]
  in
  let orders =
    Relation.of_rows
      (Schema.of_list [ ("cust", Value.Tint); ("amount", Value.Tint) ])
      [ [ Value.Int 1; Value.Int 5 ] ]
  in
  let env = Env.two_source ~params:fast ~seed:18 ~left:("L", dup) ~right:("R", orders) () in
  let client = Env.make_client env ~identity:"dup" ~properties:[ [] ] in
  match
    Aggregate_join.run ~strategy:Aggregate_join.Homomorphic env client
      ~query:"select sum(amount) from L natural join R"
  with
  | exception Aggregate_join.Unsupported _ -> ()
  | _ -> Alcotest.fail "duplicate left keys must be rejected"

let test_aggregate_unsupported_shapes () =
  let rejects query =
    match run_agg query with
    | exception Aggregate_join.Unsupported _ -> ()
    | _ -> Alcotest.failf "should reject %S" query
  in
  rejects "select * from Customers natural join Orders";
  rejects "select count(*) from Customers natural join Orders where amount > 10";
  rejects "select segment, count(*) from Customers natural join Orders group by segment";
  rejects "select sum(ghost) from Customers natural join Orders";
  (* Aggregating the join attribute itself is fine (both sides agree). *)
  check_correct "sum over join attribute"
    (run_agg "select sum(cust) from Customers natural join Orders")

let test_aggregate_via_join_protocols () =
  (* The ordinary join protocols also answer aggregation queries (the
     client aggregates after decryption); results must agree with the
     dedicated protocol. *)
  let env = agg_env () in
  let client = Env.make_client env ~identity:"agg2" ~properties:[ [] ] in
  let query = "select cust, sum(amount) as spent from Customers natural join Orders group by cust" in
  let via_join = Protocol.run_exn (Protocol.Commutative { use_ids = false }) env client ~query in
  let via_agg = Aggregate_join.run env client ~query in
  check_correct "via join" via_join;
  check_correct "via aggregate protocol" via_agg;
  Alcotest.(check bool) "same results" true
    (Relation.equal_contents via_join.Outcome.result via_agg.Outcome.result);
  (* The aggregation protocol ships less data. *)
  Alcotest.(check bool) "less traffic" true
    (Transcript.total_bytes via_agg.Outcome.transcript
    < Transcript.total_bytes via_join.Outcome.transcript)

(* ------------------------------------------------------------------ *)
(* End-to-end property: random workloads, every protocol stays exact. *)

let prop_random_workloads =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random workloads run correctly" ~count:10
       QCheck2.Gen.(
         tup5 (int_range 2 5) (int_range 2 5) (int_range 0 2) (int_range 1 1000)
           (int_range 0 4))
       (fun (distinct_left, distinct_right, extra_overlap, seed, scheme_index) ->
         let overlap = Stdlib.min extra_overlap (Stdlib.min distinct_left distinct_right) in
         let spec =
           {
             Workload.default with
             rows_left = 2 * distinct_left;
             rows_right = 2 * distinct_right;
             distinct_left;
             distinct_right;
             overlap;
             extra_attrs = 1;
             seed;
           }
         in
         let env, client, query = Workload.scenario ~params:fast spec in
         let scheme = List.nth Protocol.all_schemes scheme_index in
         let o = Protocol.run_exn scheme env client ~query in
         Outcome.correct o))

let prop_setops_algebra =
  (* Algebraic laws of the secure set operations: |I| + |D| = |distinct L|,
     semi-join ⊆ L, I ⊆ both. *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"set operation algebra" ~count:8
       QCheck2.Gen.(pair (int_range 1 300) (int_range 2 6))
       (fun (seed, distinct) ->
         let spec =
           {
             Workload.default with
             rows_left = 2 * distinct;
             rows_right = 2 * distinct;
             distinct_left = distinct;
             distinct_right = distinct;
             overlap = distinct / 2;
             extra_attrs = 0;
             seed;
           }
         in
         let left, right = Workload.generate spec in
         let env =
           Env.two_source ~params:fast ~seed ~left:("L", left) ~right:("R", right) ()
         in
         let client = Env.make_client env ~identity:"p" ~properties:[ [] ] in
         let result op = (Set_ops.run env client op ~left:"L" ~right:"R").Outcome.result in
         let inter = result Set_ops.Intersection in
         let diff = result Set_ops.Difference in
         let distinct_left = Relation.distinct (Relation.rename "L" left) in
         Relation.cardinality inter + Relation.cardinality diff
         = Relation.cardinality distinct_left))

(* ------------------------------------------------------------------ *)
(* Leakage: the machine-checked Table 1 claims. *)

let test_leakage_claims_hold () =
  let env, client, query = scenario () in
  let left, right = Workload.generate small_spec in
  let g = Ground_truth.compute left right ~join_attr:"a_join" in
  List.iter
    (fun scheme ->
      let o = Protocol.run_exn scheme env client ~query in
      let claims = Leakage.verify o ~ground_truth:g in
      Alcotest.(check bool)
        (Protocol.scheme_name scheme ^ " has claims")
        true (claims <> []);
      if not (Leakage.all_hold claims) then
        Alcotest.failf "%s leakage claims violated:\n%s" (Protocol.scheme_name scheme)
          (Format.asprintf "%a" Leakage.pp_claims claims))
    Protocol.paper_schemes

let test_table_rendering () =
  let env, client, query = scenario () in
  let outcomes = List.map (fun s -> Protocol.run_exn s env client ~query) Protocol.paper_schemes in
  let t1 = Leakage.table1 outcomes and t2 = Leakage.table2 outcomes in
  Alcotest.(check bool) "table1 non-trivial" true (String.length t1 > 100);
  Alcotest.(check bool) "table2 non-trivial" true (String.length t2 > 100);
  let contains haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "commutative row" true (contains t1 "commutative");
  Alcotest.(check bool) "homomorphic column" true (contains t2 "homomorphic")

let test_counters_match_paper_table2 () =
  let env, client, query = scenario () in
  let counts scheme primitive =
    let o = Protocol.run_exn scheme env client ~query in
    Option.value ~default:0 (List.assoc_opt primitive o.Outcome.counters)
  in
  (* DAS uses the collision-free hash, no commutative or homomorphic ops. *)
  Alcotest.(check bool) "das hash" true
    (counts (Protocol.Das (Das_partition.Equi_depth 3, Das.Pair_index)) Counters.Hash > 0);
  Alcotest.(check int) "das no commutative" 0
    (counts (Protocol.Das (Das_partition.Equi_depth 3, Das.Pair_index)) Counters.Commutative_encrypt);
  (* Commutative uses the ideal hash + commutative encryption, nothing
     homomorphic. *)
  Alcotest.(check bool) "comm ideal hash" true
    (counts (Protocol.Commutative { use_ids = false }) Counters.Ideal_hash > 0);
  Alcotest.(check bool) "comm encryptions" true
    (counts (Protocol.Commutative { use_ids = false }) Counters.Commutative_encrypt > 0);
  Alcotest.(check int) "comm no homomorphic" 0
    (counts (Protocol.Commutative { use_ids = false }) Counters.Homomorphic_encrypt);
  (* PM uses homomorphic encryption and fresh random masks. *)
  Alcotest.(check bool) "pm homomorphic" true
    (counts (Protocol.Private_matching Pm_join.Session_keys) Counters.Homomorphic_encrypt > 0);
  Alcotest.(check bool) "pm random masks" true
    (counts (Protocol.Private_matching Pm_join.Session_keys) Counters.Random_number > 0);
  Alcotest.(check int) "pm no commutative" 0
    (counts (Protocol.Private_matching Pm_join.Session_keys) Counters.Commutative_encrypt)

let test_transcript_interactions () =
  let env, client, query = scenario () in
  (* Commutative: each source sends twice (M_i, then the re-encrypted
     set) — "they have to interact twice with the mediator". *)
  let o = Protocol.run_exn (Protocol.Commutative { use_ids = false }) env client ~query in
  Alcotest.(check int) "source-1 sends twice" 2
    (Transcript.sends_by o.Outcome.transcript (Transcript.Source 1));
  (* DAS: the client interacts twice (global query, then q_S). *)
  let o = Protocol.run_exn (Protocol.Das (Das_partition.Equi_depth 3, Das.Pair_index)) env client ~query in
  Alcotest.(check int) "das client sends twice" 2
    (Transcript.sends_by o.Outcome.transcript Transcript.Client);
  (* DAS sources send only once — "the most convenient one". *)
  Alcotest.(check int) "das source sends once" 1
    (Transcript.sends_by o.Outcome.transcript (Transcript.Source 1))

(* ------------------------------------------------------------------ *)
(* Access control integration. *)

let records =
  Relation.of_rows
    (Schema.of_list [ ("a_join", Value.Tint); ("diagnosis", Value.Tstring); ("public", Value.Tbool) ])
    [ [ Value.Int 1; Value.Str "flu"; Value.Bool true ];
      [ Value.Int 2; Value.Str "rare"; Value.Bool false ];
      [ Value.Int 3; Value.Str "cold"; Value.Bool true ] ]

let billing =
  Relation.of_rows
    (Schema.of_list [ ("a_join", Value.Tint); ("amount", Value.Tint) ])
    [ [ Value.Int 1; Value.Int 100 ]; [ Value.Int 2; Value.Int 250 ]; [ Value.Int 3; Value.Int 60 ] ]

let restricted_env ?(seed = 11) ~policy () =
  let entry relation source rel =
    { Catalog.relation; source; schema = Relation.schema rel; source_relation = relation }
  in
  let catalog = Catalog.make [ entry "Records" 1 records; entry "Billing" 2 billing ] in
  Env.make ~params:fast ~seed ~catalog
    ~sources:
      [
        { Env.source_id = 1; relations = [ ("Records", records) ]; policy; advertised = [ "role" ] };
        { Env.source_id = 2; relations = [ ("Billing", billing) ]; policy = Policy.open_policy;
          advertised = [] };
      ]
    ()

let nurse_policy =
  Policy.make
    [
      { Policy.requires = [ Credential.property "role" "physician" ]; grant = Policy.Full };
      { Policy.requires = [ Credential.property "role" "nurse" ];
        grant = Policy.Filtered (Predicate.eq_const "public" (Value.Bool true)) };
    ]

let query_rb = "select * from Records natural join Billing"

let test_access_full () =
  let env = restricted_env ~policy:nurse_policy () in
  let client =
    Env.make_client env ~identity:"doc" ~properties:[ [ Credential.property "role" "physician" ] ]
  in
  List.iter
    (fun scheme ->
      let o = Protocol.run_exn scheme env client ~query:query_rb in
      check_correct (Protocol.scheme_name scheme) o;
      Alcotest.(check int) "all rows" 3 (Relation.cardinality o.Outcome.result))
    Protocol.paper_schemes

let test_access_filtered () =
  let env = restricted_env ~policy:nurse_policy () in
  let client =
    Env.make_client env ~identity:"nn" ~properties:[ [ Credential.property "role" "nurse" ] ]
  in
  List.iter
    (fun scheme ->
      let o = Protocol.run_exn scheme env client ~query:query_rb in
      check_correct (Protocol.scheme_name scheme) o;
      (* Row with public=false is filtered before the join. *)
      Alcotest.(check int) "filtered rows" 2 (Relation.cardinality o.Outcome.result))
    Protocol.paper_schemes

let test_access_denied () =
  let env = restricted_env ~policy:nurse_policy () in
  let client =
    Env.make_client env ~identity:"rando" ~properties:[ [ Credential.property "role" "visitor" ] ]
  in
  match Protocol.run_exn (Protocol.Commutative { use_ids = false }) env client ~query:query_rb with
  | exception Request.Access_denied 1 -> ()
  | exception Request.Access_denied i -> Alcotest.failf "denied by unexpected source %d" i
  | _ -> Alcotest.fail "visitor must be denied"

let test_bad_credential_rejected () =
  let env = restricted_env ~policy:nurse_policy () in
  (* A credential from a different CA is rejected at the source. *)
  let rogue_env = restricted_env ~seed:99 ~policy:nurse_policy () in
  let client =
    Env.make_client rogue_env ~identity:"doc"
      ~properties:[ [ Credential.property "role" "physician" ] ]
  in
  match Protocol.run_exn (Protocol.Commutative { use_ids = false }) env client ~query:query_rb with
  | exception Request.Bad_credential _ -> ()
  | _ -> Alcotest.fail "foreign credential must be rejected"

let test_credential_subset_selection () =
  let env = restricted_env ~policy:nurse_policy () in
  let client =
    Env.make_client env ~identity:"multi"
      ~properties:
        [ [ Credential.property "role" "physician" ];
          [ Credential.property "hobby" "chess" ] ]
  in
  let o = Protocol.run_exn Protocol.Plain env client ~query:query_rb in
  check_correct "subset selection still authorizes" o

(* ------------------------------------------------------------------ *)
(* Workload and environment plumbing. *)

let test_workload_validate () =
  let invalid = { small_spec with overlap = 100 } in
  Alcotest.check_raises "overlap too large"
    (Invalid_argument "Workload: overlap must be within both distinct counts") (fun () ->
      Workload.validate invalid);
  let invalid = { small_spec with rows_left = 1 } in
  Alcotest.check_raises "too few rows"
    (Invalid_argument "Workload: need at least as many rows as distinct values") (fun () ->
      Workload.validate invalid)

let test_workload_respects_spec () =
  let left, right = Workload.generate small_spec in
  Alcotest.(check int) "rows left" small_spec.Workload.rows_left (Relation.cardinality left);
  Alcotest.(check int) "rows right" small_spec.Workload.rows_right (Relation.cardinality right);
  Alcotest.(check int) "distinct left" small_spec.Workload.distinct_left
    (List.length (Relation.active_domain left "a_join"));
  Alcotest.(check int) "distinct right" small_spec.Workload.distinct_right
    (List.length (Relation.active_domain right "a_join"));
  let g = Ground_truth.compute left right ~join_attr:"a_join" in
  Alcotest.(check int) "overlap" small_spec.Workload.overlap g.Ground_truth.domactive_intersection

let test_workload_deterministic () =
  let a1, b1 = Workload.generate small_spec in
  let a2, b2 = Workload.generate small_spec in
  Alcotest.(check bool) "same left" true (Relation.equal_contents a1 a2);
  Alcotest.(check bool) "same right" true (Relation.equal_contents b1 b2);
  let a3, _ = Workload.generate { small_spec with seed = small_spec.Workload.seed + 1 } in
  Alcotest.(check bool) "different seed differs" true (not (Relation.equal_contents a1 a3))

let alias_spellings =
  [ "das"; "das-singleton"; "das-nested-loop"; "commutative"; "commutative-ids"; "pm";
    "pm-direct"; "mobile-code"; "plain" ]

let test_protocol_names () =
  (* Canonical names round-trip: parsing what scheme_name prints gives the
     same scheme back, for every representative configuration. *)
  List.iter
    (fun scheme ->
      let name = Protocol.scheme_name scheme in
      match Protocol.scheme_of_name name with
      | Some parsed ->
        Alcotest.(check string)
          (name ^ " round-trips") name (Protocol.scheme_name parsed)
      | None -> Alcotest.failf "canonical name %s not parsed back" name)
    Protocol.all_schemes;
  (* Alias spellings parse, and parsing is idempotent through the
     canonical name. *)
  List.iter
    (fun alias ->
      match Protocol.scheme_of_name alias with
      | None -> Alcotest.failf "unknown alias %s" alias
      | Some scheme ->
        let canonical = Protocol.scheme_name scheme in
        Alcotest.(check bool)
          (alias ^ " -> " ^ canonical ^ " round-trips")
          true
          (Protocol.scheme_of_name canonical = Some scheme))
    alias_spellings;
  List.iter
    (fun bogus ->
      Alcotest.(check bool)
        ("unknown rejected: " ^ bogus)
        true
        (Protocol.scheme_of_name bogus = None))
    [ "quantum"; "pm["; "das[equi-depth(5)]"; "commutative[IDS]"; ""; "PLAIN" ]

let test_outcome_accessors () =
  let env, client, query = scenario () in
  let o = Protocol.run_exn (Protocol.Commutative { use_ids = false }) env client ~query in
  Alcotest.(check bool) "timings recorded" true (List.length o.Outcome.timings >= 3);
  Alcotest.(check bool) "total positive" true (Outcome.timing_total o > 0.0);
  Alcotest.(check bool) "summary renders" true
    (String.length (Format.asprintf "%a" Outcome.pp_summary o) > 0)

let () =
  Alcotest.run "core-protocols"
    [
      ( "das-partition",
        [
          Alcotest.test_case "covers active domain" `Quick test_partition_covers_active_domain;
          Alcotest.test_case "unique identifiers" `Quick test_partition_identifiers_unique;
          Alcotest.test_case "disjoint partitions" `Quick test_partition_disjoint_within_table;
          Alcotest.test_case "partition counts" `Quick test_partition_counts;
          Alcotest.test_case "overlap semantics" `Quick test_partition_overlap_semantics;
          Alcotest.test_case "overlapping pairs" `Quick test_overlapping_pairs_brute_force;
          Alcotest.test_case "wire roundtrip" `Quick test_partition_wire_roundtrip;
          Alcotest.test_case "string domains" `Quick test_partition_string_domain;
          Alcotest.test_case "disclosure bits" `Quick test_disclosure_bits;
          Alcotest.test_case "empty domain" `Quick test_partition_empty_domain;
        ] );
      ( "pm-poly",
        [
          Alcotest.test_case "roots vanish" `Quick test_poly_roots;
          Alcotest.test_case "known coefficients" `Quick test_poly_known_coefficients;
          Alcotest.test_case "empty roots" `Quick test_poly_empty_roots;
          Alcotest.test_case "encrypted evaluation" `Quick test_poly_encrypted_eval;
          Alcotest.test_case "mask and add" `Quick test_poly_mask_and_add;
          Alcotest.test_case "root encoding" `Quick test_root_of_value_deterministic;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "all schemes correct" `Quick test_all_schemes_correct;
          Alcotest.test_case "das strategies" `Quick test_das_all_strategies_correct;
          Alcotest.test_case "das nested loop agrees" `Quick test_das_nested_loop_agrees;
          Alcotest.test_case "commutative ids variant" `Quick test_commutative_ids_variant;
          Alcotest.test_case "pm variants agree" `Slow test_pm_variants_agree;
          Alcotest.test_case "multiple seeds" `Slow test_multiple_seeds;
          Alcotest.test_case "string join values" `Quick test_string_join_values;
          Alcotest.test_case "disjoint domains" `Quick test_disjoint_domains;
          Alcotest.test_case "full overlap" `Quick test_full_overlap;
          Alcotest.test_case "duplicate join values" `Quick test_duplicate_join_values;
          prop_random_workloads;
          prop_setops_algebra;
          Alcotest.test_case "multi-attribute joins" `Quick test_multi_attribute_join;
          Alcotest.test_case "multi-attribute leakage" `Quick test_multi_attribute_leakage;
          Alcotest.test_case "join-key module" `Quick test_join_key_module;
          Alcotest.test_case "das translator settings" `Quick test_das_translator_settings;
          Alcotest.test_case "superset behaviour" `Quick test_superset_behaviour;
          Alcotest.test_case "residual clauses" `Quick test_residual_query_clauses;
        ] );
      ( "successive-joins",
        [
          Alcotest.test_case "three sources" `Quick test_successive_joins;
          Alcotest.test_case "all schemes" `Quick test_successive_joins_all_schemes;
          Alcotest.test_case "residual clauses" `Quick test_successive_joins_residuals;
          Alcotest.test_case "unsupported shapes" `Quick test_successive_joins_unsupported;
        ] );
      ( "set-operations",
        [
          Alcotest.test_case "intersection" `Quick test_intersection;
          Alcotest.test_case "difference" `Quick test_difference;
          Alcotest.test_case "semi-join" `Quick test_semi_join;
          Alcotest.test_case "layout mismatch" `Quick test_setop_layout_mismatch;
          Alcotest.test_case "lean right source" `Quick test_setop_right_source_ships_no_tuples;
        ] );
      ( "das-internals",
        [
          Alcotest.test_case "encrypt_relation" `Quick test_das_encrypt_relation_internals;
          Alcotest.test_case "server condition" `Quick test_das_server_condition_shape;
        ] );
      ( "das-select",
        [
          Alcotest.test_case "atom translation sound" `Quick test_translate_atoms_sound;
          Alcotest.test_case "translation precision" `Quick test_translate_precision;
          prop_translation_sound;
          Alcotest.test_case "end to end" `Quick test_select_query_end_to_end;
          Alcotest.test_case "superset behaviour" `Quick test_select_query_superset;
          Alcotest.test_case "unsupported shapes" `Quick test_select_query_unsupported;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "scalar" `Quick test_aggregate_scalar;
          Alcotest.test_case "grouped" `Quick test_aggregate_grouped;
          Alcotest.test_case "left-side column" `Quick test_aggregate_left_side_column;
          Alcotest.test_case "homomorphic" `Quick test_aggregate_homomorphic;
          Alcotest.test_case "homomorphic preconditions" `Quick
            test_aggregate_homomorphic_unsupported;
          Alcotest.test_case "unsupported shapes" `Quick test_aggregate_unsupported_shapes;
          Alcotest.test_case "agrees with join protocols" `Quick
            test_aggregate_via_join_protocols;
        ] );
      ( "leakage",
        [
          Alcotest.test_case "claims hold" `Quick test_leakage_claims_hold;
          Alcotest.test_case "table rendering" `Quick test_table_rendering;
          Alcotest.test_case "table 2 counters" `Quick test_counters_match_paper_table2;
          Alcotest.test_case "interaction counts" `Quick test_transcript_interactions;
        ] );
      ( "access-control",
        [
          Alcotest.test_case "full access" `Quick test_access_full;
          Alcotest.test_case "filtered access" `Quick test_access_filtered;
          Alcotest.test_case "denied" `Quick test_access_denied;
          Alcotest.test_case "bad credential" `Quick test_bad_credential_rejected;
          Alcotest.test_case "credential subset" `Quick test_credential_subset_selection;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "workload validation" `Quick test_workload_validate;
          Alcotest.test_case "workload spec" `Quick test_workload_respects_spec;
          Alcotest.test_case "workload determinism" `Quick test_workload_deterministic;
          Alcotest.test_case "scheme names" `Quick test_protocol_names;
          Alcotest.test_case "outcome accessors" `Quick test_outcome_accessors;
        ] );
    ]

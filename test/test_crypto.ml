(* Tests for the cryptographic substrate: NIST/RFC vectors for the
   symmetric primitives, algebraic properties for the public-key schemes. *)

open Secmed_bigint
open Secmed_crypto

let prng () = Prng.of_int_seed 2024

let hex = Bytes_util.of_hex

(* ------------------------------------------------------------------ *)
(* Bytes_util. *)

let test_hex_roundtrip () =
  Alcotest.(check string) "encode" "00ff10ab" (Bytes_util.to_hex "\x00\xff\x10\xab");
  Alcotest.(check string) "decode" "\x00\xff\x10\xab" (Bytes_util.of_hex "00ff10AB");
  Alcotest.check_raises "odd length" (Invalid_argument "Bytes_util.of_hex: odd length")
    (fun () -> ignore (Bytes_util.of_hex "abc"))

let test_xor () =
  Alcotest.(check string) "xor" "\x03\x00" (Bytes_util.xor "\x01\x02" "\x02\x02");
  Alcotest.check_raises "mismatch" (Invalid_argument "Bytes_util.xor: length mismatch")
    (fun () -> ignore (Bytes_util.xor "a" "ab"))

let test_constant_time_equal () =
  Alcotest.(check bool) "equal" true (Bytes_util.constant_time_equal "abc" "abc");
  Alcotest.(check bool) "diff" false (Bytes_util.constant_time_equal "abc" "abd");
  Alcotest.(check bool) "len" false (Bytes_util.constant_time_equal "ab" "abc")

let test_chunks () =
  Alcotest.(check (list string)) "chunks" [ "ab"; "cd"; "e" ] (Bytes_util.chunks 2 "abcde");
  Alcotest.(check (list string)) "empty" [] (Bytes_util.chunks 4 "")

(* ------------------------------------------------------------------ *)
(* SHA-256: FIPS 180-4 / NIST CAVS vectors. *)

let sha_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "The quick brown fox jumps over the lazy dog",
      "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592" );
  ]

let test_sha256_vectors () =
  List.iter
    (fun (input, expected) -> Alcotest.(check string) "digest" expected (Sha256.hex_digest input))
    sha_vectors

let test_sha256_incremental () =
  (* Feeding in arbitrary chunkings must agree with the one-shot digest. *)
  let message = String.init 5000 (fun i -> Char.chr (i mod 251)) in
  let expected = Sha256.digest message in
  List.iter
    (fun chunk_size ->
      let ctx = Sha256.init () in
      List.iter (Sha256.update ctx) (Bytes_util.chunks chunk_size message);
      Alcotest.(check string)
        (Printf.sprintf "chunks of %d" chunk_size)
        (Bytes_util.to_hex expected)
        (Bytes_util.to_hex (Sha256.finalize ctx)))
    [ 1; 3; 63; 64; 65; 1000 ]

let test_sha256_padding_boundaries () =
  (* Lengths around the 55/56/64 byte padding boundaries, cross-checked
     between one-shot and incremental interfaces. *)
  List.iter
    (fun len ->
      let m = String.make len 'x' in
      let ctx = Sha256.init () in
      Sha256.update ctx m;
      Alcotest.(check string)
        (Printf.sprintf "len %d" len)
        (Bytes_util.to_hex (Sha256.digest m))
        (Bytes_util.to_hex (Sha256.finalize ctx)))
    [ 54; 55; 56; 57; 63; 64; 65; 119; 120; 128 ]

(* ------------------------------------------------------------------ *)
(* HMAC-SHA256: RFC 4231 vectors. *)

let test_hmac_rfc4231 () =
  let check name key msg expected =
    Alcotest.(check string) name expected (Hmac.sha256_hex ~key msg)
  in
  check "case 1" (String.make 20 '\x0b') "Hi There"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7";
  check "case 2" "Jefe" "what do ya want for nothing?"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843";
  check "case 3" (String.make 20 '\xaa') (String.make 50 '\xdd')
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe";
  check "case 6 (large key)" (String.make 131 '\xaa')
    "Test Using Larger Than Block-Size Key - Hash Key First"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"

let test_hmac_verify () =
  let key = "secret" and msg = "payload" in
  let tag = Hmac.sha256 ~key msg in
  Alcotest.(check bool) "verify ok" true (Hmac.verify ~key msg ~tag);
  Alcotest.(check bool) "wrong msg" false (Hmac.verify ~key "other" ~tag);
  Alcotest.(check bool) "wrong key" false (Hmac.verify ~key:"nope" msg ~tag)

(* ------------------------------------------------------------------ *)
(* AES-128: FIPS 197 appendix + NIST SP 800-38A. *)

let test_aes_fips197 () =
  let key = Aes.expand_key (hex "000102030405060708090a0b0c0d0e0f") in
  let ct = Aes.encrypt_block key (hex "00112233445566778899aabbccddeeff") in
  Alcotest.(check string) "encrypt" "69c4e0d86a7b0430d8cdb78070b4c55a" (Bytes_util.to_hex ct);
  Alcotest.(check string) "decrypt" "00112233445566778899aabbccddeeff"
    (Bytes_util.to_hex (Aes.decrypt_block key ct))

let test_aes_sp800_38a () =
  (* SP 800-38A F.1.1 ECB-AES128 block 1 (checks key schedule + rounds). *)
  let key = Aes.expand_key (hex "2b7e151628aed2a6abf7158809cf4f3c") in
  Alcotest.(check string) "ecb block" "3ad77bb40d7a3660a89ecaf32466ef97"
    (Bytes_util.to_hex (Aes.encrypt_block key (hex "6bc1bee22e409f96e93d7e117393172a")))

let test_aes_roundtrip () =
  let g = prng () in
  for _ = 1 to 50 do
    let key = Aes.expand_key (Prng.bytes g 16) in
    let block = Prng.bytes g 16 in
    Alcotest.(check string) "roundtrip" (Bytes_util.to_hex block)
      (Bytes_util.to_hex (Aes.decrypt_block key (Aes.encrypt_block key block)))
  done

let test_aes_ctr_involution () =
  let g = prng () in
  for len = 0 to 70 do
    let key = Prng.bytes g 16 and nonce = Prng.bytes g 12 in
    let msg = Prng.bytes g len in
    let ct = Aes.ctr_transform ~key ~nonce msg in
    Alcotest.(check string) (Printf.sprintf "len %d" len) (Bytes_util.to_hex msg)
      (Bytes_util.to_hex (Aes.ctr_transform ~key ~nonce ct));
    if len > 0 then
      Alcotest.(check bool) "actually encrypts" true (not (String.equal msg ct))
  done

(* ------------------------------------------------------------------ *)
(* ChaCha20 PRNG. *)

let test_chacha20_vector () =
  (* Canonical ChaCha20 keystream for the all-zero key/nonce, block 0. *)
  let block = Prng.raw_block ~key:(String.make 32 '\000') ~counter:0 in
  Alcotest.(check string) "zero-key block"
    "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7"
    (Bytes_util.to_hex (String.sub block 0 32));
  (* Counter separation: block 1 differs. *)
  let block1 = Prng.raw_block ~key:(String.make 32 '\000') ~counter:1 in
  Alcotest.(check bool) "blocks differ" true (not (String.equal block block1))

let test_prng_deterministic () =
  let a = Prng.create ~seed:"fixed" and b = Prng.create ~seed:"fixed" in
  Alcotest.(check string) "same stream" (Prng.bytes a 100) (Prng.bytes b 100);
  let c = Prng.create ~seed:"other" in
  Alcotest.(check bool) "different seed" true
    (not (String.equal (Prng.bytes (Prng.create ~seed:"fixed") 100) (Prng.bytes c 100)))

let test_prng_split_independent () =
  let g = Prng.of_int_seed 5 in
  let a = Prng.split g "a" and b = Prng.split g "b" in
  Alcotest.(check bool) "children differ" true
    (not (String.equal (Prng.bytes a 64) (Prng.bytes b 64)));
  (* Splitting does not consume parent state. *)
  let g1 = Prng.of_int_seed 5 in
  let _ = Prng.split g1 "a" in
  Alcotest.(check string) "parent unchanged" (Prng.bytes (Prng.of_int_seed 5) 32)
    (Prng.bytes g1 32)

let test_prng_uniform_int () =
  let g = prng () in
  for _ = 1 to 2000 do
    let v = Prng.uniform_int g 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done;
  let seen = Array.make 17 false in
  for _ = 1 to 2000 do
    seen.(Prng.uniform_int g 17) <- true
  done;
  Alcotest.(check bool) "covers range" true (Array.for_all Fun.id seen)

let test_prng_shuffle () =
  let g = prng () in
  let a = Array.init 20 Fun.id in
  let shuffled = Array.copy a in
  Prng.shuffle g shuffled;
  Alcotest.(check bool) "is permutation" true
    (List.sort compare (Array.to_list shuffled) = Array.to_list a)

(* ------------------------------------------------------------------ *)
(* Primes. *)

let test_is_probable_prime_known () =
  let g = prng () in
  let prime n = Primes.is_probable_prime g (Bigint.of_string n) in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " prime") true (prime n))
    [ "2"; "3"; "17"; "1999"; "2003"; "1000000007"; "170141183460469231731687303715884105727" ];
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " composite") false (prime n))
    [ "0"; "1"; "4"; "561"; "1105"; "2001"; "1000000008";
      "170141183460469231731687303715884105725" ]

let test_gen_prime () =
  let g = prng () in
  List.iter
    (fun bits ->
      let p = Primes.gen_prime g ~bits in
      Alcotest.(check int) "bit width" bits (Bigint.numbits p);
      Alcotest.(check bool) "is prime" true (Primes.is_probable_prime g p))
    [ 32; 64; 128 ]

let test_gen_safe_prime () =
  let g = prng () in
  let p = Primes.gen_safe_prime g ~bits:96 in
  let q = Bigint.shift_right (Bigint.pred p) 1 in
  Alcotest.(check int) "bit width" 96 (Bigint.numbits p);
  Alcotest.(check bool) "p prime" true (Primes.is_probable_prime g p);
  Alcotest.(check bool) "q prime" true (Primes.is_probable_prime g q)

(* ------------------------------------------------------------------ *)
(* Group. *)

let group () = Group.default ~bits:160

let test_group_structure () =
  let g = group () in
  let rng = prng () in
  Alcotest.(check bool) "p = 2q+1" true
    (Bigint.equal g.Group.p (Bigint.succ (Bigint.shift_left g.Group.q 1)));
  Alcotest.(check bool) "generator in subgroup" true (Group.is_element g g.Group.g);
  Alcotest.(check bool) "g^q = 1" true
    (Bigint.is_one (Bigint.mod_pow g.Group.g g.Group.q g.Group.p));
  let x = Group.random_exponent rng g in
  Alcotest.(check bool) "exponent range" true
    (Bigint.sign x > 0 && Bigint.compare x g.Group.q < 0);
  Alcotest.(check bool) "element membership" true
    (Group.is_element g (Group.element_of_exponent g x));
  Alcotest.(check bool) "non-element rejected" true (not (Group.is_element g Bigint.zero))

let test_group_cached () =
  let a = Group.default ~bits:160 and b = Group.default ~bits:160 in
  Alcotest.(check bool) "same group" true (Bigint.equal a.Group.p b.Group.p)

(* ------------------------------------------------------------------ *)
(* ElGamal + hybrid. *)

let test_elgamal_roundtrip () =
  let g = group () in
  let rng = prng () in
  let sk = Elgamal.keygen rng g in
  for _ = 1 to 20 do
    let t = Group.random_exponent rng g in
    let m = Group.element_of_exponent g t in
    let ct = Elgamal.encrypt rng (Elgamal.public sk) m in
    Alcotest.(check bool) "roundtrip" true (Bigint.equal m (Elgamal.decrypt sk ct))
  done

let test_elgamal_multiplicative () =
  let g = group () in
  let rng = prng () in
  let sk = Elgamal.keygen rng g in
  let pk = Elgamal.public sk in
  let m1 = Group.element_of_exponent g (Group.random_exponent rng g) in
  let m2 = Group.element_of_exponent g (Group.random_exponent rng g) in
  let c1 = Elgamal.encrypt rng pk m1 and c2 = Elgamal.encrypt rng pk m2 in
  let product =
    {
      Elgamal.c1 = Bigint.emod (Bigint.mul c1.Elgamal.c1 c2.Elgamal.c1) g.Group.p;
      c2 = Bigint.emod (Bigint.mul c1.Elgamal.c2 c2.Elgamal.c2) g.Group.p;
    }
  in
  Alcotest.(check bool) "multiplicative homomorphism" true
    (Bigint.equal (Bigint.emod (Bigint.mul m1 m2) g.Group.p) (Elgamal.decrypt sk product))

let test_kem () =
  let g = group () in
  let rng = prng () in
  let sk = Elgamal.keygen rng g in
  let ct, secret = Elgamal.encapsulate rng (Elgamal.public sk) in
  Alcotest.(check string) "decapsulate" (Bytes_util.to_hex secret)
    (Bytes_util.to_hex (Elgamal.decapsulate sk ct))

let test_hybrid_roundtrip () =
  let g = group () in
  let rng = prng () in
  let sk = Elgamal.keygen rng g in
  let pk = Elgamal.public sk in
  List.iter
    (fun len ->
      let msg = Prng.bytes rng len in
      let ct = Hybrid.encrypt rng pk msg in
      match Hybrid.decrypt sk ct with
      | Some out ->
        Alcotest.(check string) (Printf.sprintf "len %d" len) (Bytes_util.to_hex msg)
          (Bytes_util.to_hex out)
      | None -> Alcotest.fail "authentication failed on honest ciphertext")
    [ 0; 1; 16; 100; 5000 ]

let test_hybrid_tamper_detected () =
  let g = group () in
  let rng = prng () in
  let sk = Elgamal.keygen rng g in
  let ct = Hybrid.encrypt rng (Elgamal.public sk) "sensitive data" in
  let wire = Hybrid.to_wire ct in
  let tampered = Bytes.of_string wire in
  let last = Bytes.length tampered - 1 in
  Bytes.set tampered last (Char.chr (Char.code (Bytes.get tampered last) lxor 1));
  match Hybrid.decrypt sk (Hybrid.of_wire (Bytes.to_string tampered)) with
  | None -> ()
  | Some _ -> Alcotest.fail "tampering not detected"

let test_hybrid_wrong_key () =
  let g = group () in
  let rng = prng () in
  let sk1 = Elgamal.keygen rng g and sk2 = Elgamal.keygen rng g in
  let ct = Hybrid.encrypt rng (Elgamal.public sk1) "for key one" in
  match Hybrid.decrypt sk2 ct with
  | None -> ()
  | Some _ -> Alcotest.fail "decryption with the wrong key must fail authentication"

let test_hybrid_wire () =
  let g = group () in
  let rng = prng () in
  let sk = Elgamal.keygen rng g in
  let ct = Hybrid.encrypt rng (Elgamal.public sk) "over the wire" in
  let wire = Hybrid.to_wire ct in
  Alcotest.(check int) "size accounting" (Hybrid.size ct) (String.length wire);
  (match Hybrid.decrypt sk (Hybrid.of_wire wire) with
   | Some msg -> Alcotest.(check string) "roundtrip" "over the wire" msg
   | None -> Alcotest.fail "wire roundtrip broke authentication");
  Alcotest.check_raises "malformed" (Invalid_argument "Hybrid.of_wire: malformed ciphertext")
    (fun () -> ignore (Hybrid.of_wire "junk"))

let test_dem () =
  let rng = prng () in
  let key = Hybrid.random_session_key rng in
  let blob = Hybrid.dem_encrypt rng ~key "session payload" in
  (match Hybrid.dem_decrypt ~key blob with
   | Some msg -> Alcotest.(check string) "roundtrip" "session payload" msg
   | None -> Alcotest.fail "dem roundtrip failed");
  match Hybrid.dem_decrypt ~key:(Hybrid.random_session_key rng) blob with
  | None -> ()
  | Some _ -> Alcotest.fail "wrong session key accepted"

(* ------------------------------------------------------------------ *)
(* Schnorr signatures. *)

let test_schnorr () =
  let g = group () in
  let rng = prng () in
  let sk = Schnorr.keygen rng g in
  let pk = Schnorr.public sk in
  let signature = Schnorr.sign rng sk "credential body" in
  Alcotest.(check bool) "verify" true (Schnorr.verify pk "credential body" signature);
  Alcotest.(check bool) "wrong message" false (Schnorr.verify pk "forged body" signature);
  let other = Schnorr.public (Schnorr.keygen rng g) in
  Alcotest.(check bool) "wrong key" false (Schnorr.verify other "credential body" signature);
  let wire = Schnorr.signature_to_wire signature in
  Alcotest.(check bool) "wire roundtrip" true
    (Schnorr.verify pk "credential body" (Schnorr.signature_of_wire wire))

(* ------------------------------------------------------------------ *)
(* Commutative encryption. *)

let test_commutative_properties () =
  let g = group () in
  let rng = prng () in
  let k1 = Commutative.keygen rng g and k2 = Commutative.keygen rng g in
  for _ = 1 to 20 do
    let x = Random_oracle.hash g (Prng.bytes rng 12) in
    let a = Commutative.apply k1 (Commutative.apply k2 x) in
    let b = Commutative.apply k2 (Commutative.apply k1 x) in
    Alcotest.(check bool) "commutativity" true (Bigint.equal a b);
    Alcotest.(check bool) "invertibility" true
      (Bigint.equal x (Commutative.unapply k1 (Commutative.apply k1 x)));
    Alcotest.(check bool) "stays in subgroup" true (Group.is_element g a)
  done

let test_commutative_injective () =
  let g = group () in
  let rng = prng () in
  let k = Commutative.keygen rng g in
  let seen = Hashtbl.create 64 in
  for i = 0 to 99 do
    let x = Random_oracle.hash g (Printf.sprintf "item-%d" i) in
    let y = Bigint.to_string (Commutative.apply k x) in
    if Hashtbl.mem seen y then Alcotest.fail "collision under commutative encryption";
    Hashtbl.add seen y ()
  done

(* ------------------------------------------------------------------ *)
(* Paillier. *)

let paillier_key =
  lazy
    (let rng = Prng.create ~seed:"paillier-tests" in
     Paillier.keygen rng ~bits:512)

let test_paillier_roundtrip () =
  let sk = Lazy.force paillier_key in
  let pk = Paillier.public sk in
  let rng = prng () in
  for _ = 1 to 20 do
    let m = Bigint.random_below (Prng.byte_source rng) pk.Paillier.n in
    let c = Paillier.encrypt rng pk m in
    Alcotest.(check bool) "roundtrip" true (Bigint.equal m (Paillier.decrypt sk c))
  done

let test_paillier_additive () =
  let sk = Lazy.force paillier_key in
  let pk = Paillier.public sk in
  let rng = prng () in
  for _ = 1 to 10 do
    let a = Bigint.random_below (Prng.byte_source rng) pk.Paillier.n in
    let b = Bigint.random_below (Prng.byte_source rng) pk.Paillier.n in
    let sum = Paillier.add pk (Paillier.encrypt rng pk a) (Paillier.encrypt rng pk b) in
    Alcotest.(check bool) "E(a)+E(b) = E(a+b)" true
      (Bigint.equal (Bigint.emod (Bigint.add a b) pk.Paillier.n) (Paillier.decrypt sk sum))
  done

let test_paillier_scalar () =
  let sk = Lazy.force paillier_key in
  let pk = Paillier.public sk in
  let rng = prng () in
  let a = Bigint.random_below (Prng.byte_source rng) pk.Paillier.n in
  let k = Bigint.of_int 12345 in
  let scaled = Paillier.scalar_mul pk k (Paillier.encrypt rng pk a) in
  Alcotest.(check bool) "k*E(a) = E(k*a)" true
    (Bigint.equal (Bigint.emod (Bigint.mul k a) pk.Paillier.n) (Paillier.decrypt sk scaled))

let test_paillier_rerandomize () =
  let sk = Lazy.force paillier_key in
  let pk = Paillier.public sk in
  let rng = prng () in
  let m = Bigint.of_int 777 in
  let c = Paillier.encrypt rng pk m in
  let c' = Paillier.rerandomize rng pk c in
  Alcotest.(check bool) "different ciphertext" true
    (not (Bigint.equal (Paillier.ciphertext_to_bigint c) (Paillier.ciphertext_to_bigint c')));
  Alcotest.(check bool) "same plaintext" true (Bigint.equal m (Paillier.decrypt sk c'))

let test_paillier_semantic () =
  let sk = Lazy.force paillier_key in
  let pk = Paillier.public sk in
  let rng = prng () in
  let m = Bigint.of_int 1 in
  let c1 = Paillier.encrypt rng pk m and c2 = Paillier.encrypt rng pk m in
  Alcotest.(check bool) "probabilistic" true
    (not (Bigint.equal (Paillier.ciphertext_to_bigint c1) (Paillier.ciphertext_to_bigint c2)))

let test_paillier_range_checks () =
  let sk = Lazy.force paillier_key in
  let pk = Paillier.public sk in
  let rng = prng () in
  Alcotest.check_raises "negative plaintext"
    (Invalid_argument "Paillier.encrypt: plaintext out of range") (fun () ->
      ignore (Paillier.encrypt rng pk (Bigint.of_int (-1))));
  Alcotest.check_raises "plaintext too large"
    (Invalid_argument "Paillier.encrypt: plaintext out of range") (fun () ->
      ignore (Paillier.encrypt rng pk pk.Paillier.n))

let test_paillier_crt_differential () =
  (* CRT decrypt must agree with the textbook path over fresh random
     keys of several sizes, random plaintexts, and the edge plaintexts
     0, 1, n-1 — including after homomorphic combinations. *)
  let rng = prng () in
  List.iter
    (fun bits ->
      for _ = 1 to 2 do
        let sk = Paillier.keygen rng ~bits in
        let pk = Paillier.public sk in
        let check m =
          let c = Paillier.encrypt rng pk m in
          let crt = Paillier.decrypt sk c in
          let plain = Paillier.decrypt_plain sk c in
          Alcotest.(check string) "crt = plain"
            (Bigint.to_string plain) (Bigint.to_string crt);
          Alcotest.(check string) "crt = m" (Bigint.to_string m) (Bigint.to_string crt)
        in
        check Bigint.zero;
        check Bigint.one;
        check (Bigint.pred pk.Paillier.n);
        for _ = 1 to 5 do
          check (Bigint.random_below (Prng.byte_source rng) pk.Paillier.n)
        done;
        (* Homomorphic combination decrypted by both paths. *)
        let a = Bigint.random_below (Prng.byte_source rng) pk.Paillier.n in
        let b = Bigint.random_below (Prng.byte_source rng) pk.Paillier.n in
        let c =
          Paillier.scalar_mul pk (Bigint.of_int 3)
            (Paillier.add pk (Paillier.encrypt rng pk a) (Paillier.encrypt rng pk b))
        in
        Alcotest.(check string) "homomorphic crt = plain"
          (Bigint.to_string (Paillier.decrypt_plain sk c))
          (Bigint.to_string (Paillier.decrypt sk c))
      done)
    [ 128; 256; 384 ];
  (* A key rebuilt from the public modulus alone has no factorization:
     decrypt must still work via the plain path... but private keys only
     come from keygen here, so instead check decrypt counts match. *)
  let sk = Lazy.force paillier_key in
  let pk = Paillier.public sk in
  let c = Paillier.encrypt rng pk (Bigint.of_int 42) in
  Counters.reset ();
  ignore (Paillier.decrypt sk c);
  ignore (Paillier.decrypt_plain sk c);
  Alcotest.(check int) "both paths bump Homomorphic_decrypt" 2
    (Counters.count Counters.Homomorphic_decrypt)

let test_paillier_encode_bytes () =
  let sk = Lazy.force paillier_key in
  let pk = Paillier.public sk in
  let capacity = Paillier.max_plaintext_bytes pk in
  Alcotest.(check bool) "capacity positive" true (capacity > 30);
  List.iter
    (fun payload ->
      match Paillier.decode_bytes pk (Paillier.encode_bytes pk payload) with
      | Some out -> Alcotest.(check string) "roundtrip" payload out
      | None -> Alcotest.fail "decode failed")
    [ ""; "x"; "hello world"; String.make capacity 'z' ];
  Alcotest.check_raises "too long" (Invalid_argument "Paillier.encode_bytes: too long")
    (fun () -> ignore (Paillier.encode_bytes pk (String.make (capacity + 1) 'z')));
  (* Random residues decode to None with overwhelming probability. *)
  let rng = prng () in
  let misses = ref 0 in
  for _ = 1 to 200 do
    let v = Bigint.random_below (Prng.byte_source rng) pk.Paillier.n in
    match Paillier.decode_bytes pk v with None -> incr misses | Some _ -> ()
  done;
  Alcotest.(check bool) "random values rejected" true (!misses >= 199)

(* ------------------------------------------------------------------ *)
(* Random oracle. *)

let test_random_oracle () =
  let g = group () in
  let h1 = Random_oracle.hash g "alpha" in
  let h2 = Random_oracle.hash g "alpha" in
  let h3 = Random_oracle.hash g "beta" in
  Alcotest.(check bool) "deterministic" true (Bigint.equal h1 h2);
  Alcotest.(check bool) "distinct inputs" true (not (Bigint.equal h1 h3));
  Alcotest.(check bool) "lands in QR_p" true (Group.is_element g h1);
  let r = Random_oracle.hash_to_range "payload" (Bigint.of_int 1000) in
  Alcotest.(check bool) "in range" true
    (Bigint.sign r >= 0 && Bigint.compare r (Bigint.of_int 1000) < 0)

(* ------------------------------------------------------------------ *)
(* Counters. *)

let test_counters () =
  let (), counts =
    Counters.with_fresh (fun () ->
        Counters.bump Counters.Hash;
        Counters.bump Counters.Hash;
        Counters.bump_by Counters.Homomorphic_add 5)
  in
  Alcotest.(check (option int)) "hash" (Some 2) (List.assoc_opt Counters.Hash counts);
  Alcotest.(check (option int)) "homadd" (Some 5)
    (List.assoc_opt Counters.Homomorphic_add counts);
  Alcotest.(check (option int)) "untouched" (Some 0)
    (List.assoc_opt Counters.Ideal_hash counts)

let test_counters_restore () =
  Counters.reset ();
  Counters.bump Counters.Hash;
  let (), _ = Counters.with_fresh (fun () -> Counters.bump_by Counters.Hash 100) in
  Alcotest.(check int) "outer count restored" 1 (Counters.count Counters.Hash);
  Counters.reset ()

let () =
  Alcotest.run "crypto"
    [
      ( "bytes",
        [
          Alcotest.test_case "hex" `Quick test_hex_roundtrip;
          Alcotest.test_case "xor" `Quick test_xor;
          Alcotest.test_case "constant-time equal" `Quick test_constant_time_equal;
          Alcotest.test_case "chunks" `Quick test_chunks;
        ] );
      ( "sha256",
        [
          Alcotest.test_case "NIST vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "incremental" `Quick test_sha256_incremental;
          Alcotest.test_case "padding boundaries" `Quick test_sha256_padding_boundaries;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_rfc4231;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "aes",
        [
          Alcotest.test_case "FIPS 197 vector" `Quick test_aes_fips197;
          Alcotest.test_case "SP 800-38A vector" `Quick test_aes_sp800_38a;
          Alcotest.test_case "roundtrip" `Quick test_aes_roundtrip;
          Alcotest.test_case "CTR involution" `Quick test_aes_ctr_involution;
        ] );
      ( "prng",
        [
          Alcotest.test_case "ChaCha20 test vector" `Quick test_chacha20_vector;
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "uniform_int" `Quick test_prng_uniform_int;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle;
        ] );
      ( "primes",
        [
          Alcotest.test_case "known primes/composites" `Quick test_is_probable_prime_known;
          Alcotest.test_case "gen_prime" `Quick test_gen_prime;
          Alcotest.test_case "gen_safe_prime" `Quick test_gen_safe_prime;
        ] );
      ( "group",
        [
          Alcotest.test_case "structure" `Quick test_group_structure;
          Alcotest.test_case "cache" `Quick test_group_cached;
        ] );
      ( "elgamal-hybrid",
        [
          Alcotest.test_case "elgamal roundtrip" `Quick test_elgamal_roundtrip;
          Alcotest.test_case "multiplicative" `Quick test_elgamal_multiplicative;
          Alcotest.test_case "kem" `Quick test_kem;
          Alcotest.test_case "hybrid roundtrip" `Quick test_hybrid_roundtrip;
          Alcotest.test_case "tamper detection" `Quick test_hybrid_tamper_detected;
          Alcotest.test_case "wrong key" `Quick test_hybrid_wrong_key;
          Alcotest.test_case "wire format" `Quick test_hybrid_wire;
          Alcotest.test_case "dem" `Quick test_dem;
        ] );
      ("schnorr", [ Alcotest.test_case "sign/verify" `Quick test_schnorr ]);
      ( "commutative",
        [
          Alcotest.test_case "commutativity/invertibility" `Quick test_commutative_properties;
          Alcotest.test_case "injectivity" `Quick test_commutative_injective;
        ] );
      ( "paillier",
        [
          Alcotest.test_case "roundtrip" `Quick test_paillier_roundtrip;
          Alcotest.test_case "additive homomorphism" `Quick test_paillier_additive;
          Alcotest.test_case "scalar homomorphism" `Quick test_paillier_scalar;
          Alcotest.test_case "rerandomize" `Quick test_paillier_rerandomize;
          Alcotest.test_case "probabilistic" `Quick test_paillier_semantic;
          Alcotest.test_case "range checks" `Quick test_paillier_range_checks;
          Alcotest.test_case "crt ≡ plain decryption" `Quick test_paillier_crt_differential;
          Alcotest.test_case "byte packing" `Quick test_paillier_encode_bytes;
        ] );
      ("random-oracle", [ Alcotest.test_case "hash" `Quick test_random_oracle ]);
      ( "counters",
        [
          Alcotest.test_case "with_fresh" `Quick test_counters;
          Alcotest.test_case "restore" `Quick test_counters_restore;
        ] );
    ]

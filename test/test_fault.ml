(* Fault-injection and differential protocol-conformance suite.

   Exercises the Fault subsystem end to end (DESIGN.md §8): every channel
   fault category and byzantine mode against every protocol family, the
   hardened wire layer under fuzzing, the retry policy, the CLI fault-spec
   parser, and a seeded differential property — under any plan a protocol
   either returns the correct result (possibly after retry) or a typed
   fault; it never returns a wrong answer and never escapes an untyped
   exception. *)

open Secmed_bigint
open Secmed_relalg
open Secmed_mediation
open Secmed_core

(* Reduced security parameters keep the suite fast; the fault paths are
   parameter-independent. *)
let fast = { Env.group_bits = 160; paillier_bits = 384 }

(* One fixed seed for every randomized test: `make check-fault` runs are
   reproducible byte for byte. *)
let suite_seed = 0xfa0175
let seed_rand () = Random.State.make [| suite_seed |]

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Wire hardening: fuzzing the reader paths. *)

type field =
  | Fint of int
  | Fstr of string
  | Fbig of string
  | Flist of int list

let write_field w = function
  | Fint n -> Wire.write_int w n
  | Fstr s -> Wire.write_string w s
  | Fbig digits -> Wire.write_bigint w (Bigint.of_string digits)
  | Flist l -> Wire.write_list w (fun x -> Wire.write_int w x) l

let read_field r = function
  | Fint _ -> ignore (Wire.read_int r)
  | Fstr _ -> ignore (Wire.read_string r)
  | Fbig _ -> ignore (Wire.read_bigint r)
  | Flist _ -> ignore (Wire.read_list r (fun () -> Wire.read_int r))

let encode_fields fields =
  let w = Wire.writer () in
  List.iter (write_field w) fields;
  Wire.contents w

let read_fields blob fields =
  let r = Wire.reader blob in
  List.iter (read_field r) fields;
  Wire.expect_end r

let gen_field =
  QCheck2.Gen.(
    oneof
      [
        map (fun n -> Fint n) int;
        map (fun s -> Fstr s) (string_size (int_range 0 30));
        map (fun n -> Fbig (string_of_int n)) nat;
        map (fun l -> Flist l) (small_list nat);
      ])

type mutation =
  | Keep
  | Trunc of int
  | Flip of int * int
  | Garbage of string

let gen_mutation =
  QCheck2.Gen.(
    oneof
      [
        return Keep;
        map (fun k -> Trunc k) nat;
        map (fun (p, b) -> Flip (p, b)) (pair nat (int_range 0 7));
        map (fun s -> Garbage s) (string_size (int_range 0 40));
      ])

let apply_mutation blob = function
  | Keep -> blob
  | Trunc k -> String.sub blob 0 (k mod (String.length blob + 1))
  | Flip (pos, bit) ->
    if blob = "" then blob
    else
      let pos = pos mod String.length blob in
      String.mapi
        (fun i c -> if i = pos then Char.chr (Char.code c lxor (1 lsl bit)) else c)
        blob
  | Garbage s -> s

(* The single observable failure mode of the reader is Wire.Malformed:
   any other exception escaping (Invalid_argument, Out_of_memory from a
   trusted length, ...) fails the property by propagating. *)
let prop_wire_fuzz =
  QCheck_alcotest.to_alcotest ~rand:(seed_rand ())
    (QCheck2.Test.make ~name:"fuzzed reader only raises Wire.Malformed" ~count:500
       QCheck2.Gen.(pair (small_list gen_field) gen_mutation)
       (fun (fields, mutation) ->
         let blob = encode_fields fields in
         match mutation with
         | Keep ->
           read_fields blob fields;
           true
         | _ -> (
           let mutated = apply_mutation blob mutation in
           match read_fields mutated fields with
           | () -> true (* benign mutation, e.g. a flip inside a string payload *)
           | exception Wire.Malformed _ -> true)))

let test_read_list_hostile_count () =
  (* A 4-byte count field is attacker-controlled: a huge declared count
     with (almost) no bytes behind it must be rejected up front, not
     trusted into List.init. *)
  let hostile blob =
    match Wire.read_list (Wire.reader blob) (fun () -> 0) with
    | _ -> Alcotest.fail "hostile list count accepted"
    | exception Wire.Malformed _ -> ()
  in
  hostile "\xff\xff\xff\xff";
  hostile "\x7f\xff\xff\xff";
  hostile "\x00\x00\x04\x00\x01\x02\x03";
  (* An honest empty list still reads. *)
  let r = Wire.reader "\x00\x00\x00\x00" in
  Alcotest.(check (list int)) "empty list" [] (Wire.read_list r (fun () -> 0));
  Wire.expect_end r

let test_reader_negative_length () =
  (* A length prefix with the top bit set decodes as a negative int; the
     reader must refuse it rather than underflow. *)
  let w = Wire.writer () in
  Wire.write_int w min_int;
  let blob = Wire.contents w ^ "payload" in
  let r = Wire.reader blob in
  match Wire.read_string r with
  | _ -> Alcotest.fail "negative string length accepted"
  | exception Wire.Malformed _ -> ()

(* ------------------------------------------------------------------ *)
(* Shared fault-test scenario. *)

let small_spec =
  {
    Workload.default with
    rows_left = 10;
    rows_right = 10;
    distinct_left = 5;
    distinct_right = 5;
    overlap = 3;
    extra_attrs = 1;
  }

let shared = lazy (Workload.scenario ~params:fast small_spec)

let family_name scheme = Protocol.scheme_name scheme

(* The final mediator -> client delivery message of each family. *)
let final_label = function
  | Protocol.Das _ -> "RC"
  | Protocol.Commutative _ -> "result-messages"
  | Protocol.Private_matching _ -> "e-values"
  | Protocol.Mobile_code -> "encrypted-partials+code"
  | Protocol.Plain -> "global-result"

let run_with plan scheme =
  let env, client, query = Lazy.force shared in
  Protocol.run ?fault:plan scheme env client ~query

let expect_fault ~msg plan scheme =
  match run_with (Some plan) scheme with
  | Protocol.Ok _ -> Alcotest.failf "%s (%s): expected a typed fault" msg (family_name scheme)
  | Protocol.Fault f ->
    Alcotest.(check bool)
      (Printf.sprintf "%s (%s): fault events recorded or byzantine" msg (family_name scheme))
      true
      (Fault.events plan <> [] || f.Protocol.reason <> "");
    f

let expect_ok ~msg plan scheme =
  match run_with (Some plan) scheme with
  | Protocol.Ok outcome ->
    Alcotest.(check bool)
      (Printf.sprintf "%s (%s): correct" msg (family_name scheme))
      true (Outcome.correct outcome);
    outcome
  | Protocol.Fault f ->
    Alcotest.failf "%s (%s): unexpected fault: %s" msg (family_name scheme) f.Protocol.reason

(* ------------------------------------------------------------------ *)
(* Channel-fault categories, per protocol family. *)

let test_drop_detected () =
  List.iter
    (fun scheme ->
      let plan = Fault.plan ~max_retries:0 [ Fault.rule Fault.Drop ] in
      let f = expect_fault ~msg:"drop" plan scheme in
      Alcotest.(check string)
        (family_name scheme ^ ": detected in the request phase")
        "request" f.Protocol.phase;
      Alcotest.(check int) (family_name scheme ^ ": single attempt") 1 f.Protocol.attempts)
    Protocol.all_schemes

let test_truncate_detected () =
  List.iter
    (fun scheme ->
      let plan = Fault.plan ~max_retries:0 [ Fault.rule (Fault.Truncate 4) ] in
      let f = expect_fault ~msg:"truncate" plan scheme in
      Alcotest.(check bool)
        (family_name scheme ^ ": envelope caught the truncation")
        true
        (contains f.Protocol.reason "truncat" || contains f.Protocol.reason "integrity"))
    Protocol.all_schemes

let test_corrupt_detected () =
  List.iter
    (fun scheme ->
      let plan = Fault.plan ~max_retries:0 [ Fault.rule (Fault.Corrupt 2) ] in
      let f = expect_fault ~msg:"corrupt" plan scheme in
      Alcotest.(check bool)
        (family_name scheme ^ ": envelope caught the corruption")
        true
        (contains f.Protocol.reason "integrity" || contains f.Protocol.reason "truncat"))
    Protocol.all_schemes

let test_delivery_drop_detected () =
  (* Target each family's final delivery message by label. *)
  List.iter
    (fun scheme ->
      let plan =
        Fault.plan ~max_retries:0
          [
            Fault.rule ~sender:Transcript.Mediator ~receiver:Transcript.Client
              ~label:(final_label scheme) Fault.Drop;
          ]
      in
      ignore (expect_fault ~msg:"delivery drop" plan scheme))
    Protocol.all_schemes

let test_duplicate_is_harmless () =
  List.iter
    (fun scheme ->
      let plan =
        Fault.plan ~max_retries:0
          [ Fault.rule ~label:(final_label scheme) ~times:1 Fault.Duplicate ]
      in
      let outcome = expect_ok ~msg:"duplicate" plan scheme in
      let messages = Transcript.messages outcome.Outcome.transcript in
      Alcotest.(check bool)
        (family_name scheme ^ ": replayed copy accounted")
        true
        (List.exists (fun m -> contains m.Transcript.label "(dup)") messages);
      Alcotest.(check bool)
        (family_name scheme ^ ": injection noted")
        true
        (Transcript.notes outcome.Outcome.transcript <> []))
    Protocol.all_schemes

let test_delay_is_harmless () =
  List.iter
    (fun scheme ->
      let plan = Fault.plan ~max_retries:0 [ Fault.rule ~times:1 (Fault.Delay 0.05) ] in
      let _ = expect_ok ~msg:"delay" plan scheme in
      Alcotest.(check bool)
        (family_name scheme ^ ": delay accrued")
        true
        (Fault.simulated_delay plan >= 0.05))
    Protocol.all_schemes

(* ------------------------------------------------------------------ *)
(* Retry policy. *)

let test_retry_recovers_transient_drop () =
  List.iter
    (fun scheme ->
      let plan = Fault.plan ~max_retries:2 [ Fault.rule ~times:1 Fault.Drop ] in
      let outcome = expect_ok ~msg:"transient drop" plan scheme in
      Alcotest.(check int) (family_name scheme ^ ": two attempts") 2 (Fault.attempts plan);
      Alcotest.(check bool)
        (family_name scheme ^ ": retry noted in transcript")
        true
        (List.exists
           (fun n -> contains n.Transcript.text "retry")
           (Transcript.notes outcome.Outcome.transcript)))
    Protocol.all_schemes

let test_retry_budget_exhausts () =
  let plan = Fault.plan ~max_retries:2 [ Fault.rule Fault.Drop ] in
  match run_with (Some plan) Protocol.Plain with
  | Protocol.Ok _ -> Alcotest.fail "persistent drop cannot succeed"
  | Protocol.Fault f ->
    Alcotest.(check int) "budget spent" 3 f.Protocol.attempts;
    Alcotest.(check int) "one drop per attempt" 3 (List.length (Fault.events plan))

(* ------------------------------------------------------------------ *)
(* Byzantine datasources, per applicable protocol. *)

let test_byzantine_detected () =
  let cases =
    [
      (Protocol.default_das, Fault.Wrong_partition_ids, "mediator-server-query");
      (Protocol.default_das, Fault.Malformed_ciphertexts, "client-postprocess");
      (Protocol.Commutative { use_ids = false }, Fault.Stale_commutative_key, "mediator-match");
      (Protocol.Commutative { use_ids = false }, Fault.Malformed_ciphertexts,
       "client-postprocess");
      (Protocol.Private_matching Pm_join.Session_keys, Fault.Garbage_paillier,
       "source-evaluate");
      (Protocol.Private_matching Pm_join.Session_keys, Fault.Malformed_ciphertexts,
       "client-postprocess");
      (Protocol.Mobile_code, Fault.Malformed_ciphertexts, "client-postprocess");
    ]
  in
  List.iter
    (fun (scheme, mode, expected_phase) ->
      let plan = Fault.plan ~max_retries:2 ~byzantine:[ (1, mode) ] [] in
      let f =
        expect_fault
          ~msg:(Printf.sprintf "byzantine %s" (Fault.mode_name mode))
          plan scheme
      in
      Alcotest.(check string)
        (Printf.sprintf "%s/%s: detection phase" (family_name scheme) (Fault.mode_name mode))
        expected_phase f.Protocol.phase;
      (* A fresh request reaches the same liar: byzantine plans never
         retry, whatever the budget. *)
      Alcotest.(check int)
        (Printf.sprintf "%s/%s: no retry" (family_name scheme) (Fault.mode_name mode))
        1 f.Protocol.attempts)
    cases

(* ------------------------------------------------------------------ *)
(* Outcome edge cases. *)

let test_outcome_empty_join () =
  let spec = { small_spec with overlap = 0 } in
  let env, client, query = Workload.scenario ~params:fast spec in
  List.iter
    (fun scheme ->
      let outcome = Protocol.run_exn scheme env client ~query in
      Alcotest.(check bool)
        (family_name scheme ^ ": empty join correct")
        true (Outcome.correct outcome);
      Alcotest.(check int)
        (family_name scheme ^ ": empty result")
        0
        (Relation.cardinality outcome.Outcome.result);
      let sf = Outcome.superset_factor outcome in
      Alcotest.(check bool)
        (family_name scheme ^ ": superset factor finite and non-negative")
        true
        (Float.is_finite sf && sf >= 0.0))
    Protocol.all_schemes

let test_outcome_empty_relation () =
  (* One side empty: Workload.validate forbids this shape, so build the
     environment directly. *)
  let left_schema = Schema.of_list [ ("a_join", Value.Tint); ("lx", Value.Tint) ] in
  let right_schema = Schema.of_list [ ("a_join", Value.Tint); ("ry", Value.Tint) ] in
  let left = Relation.make left_schema [] in
  let right =
    Relation.of_rows right_schema
      [ [ Value.Int 1; Value.Int 10 ]; [ Value.Int 2; Value.Int 20 ] ]
  in
  let env = Env.two_source ~params:fast ~seed:11 ~left:("L", left) ~right:("R", right) () in
  let client = Env.make_client env ~identity:"edge" ~properties:[ [] ] in
  let query = "select * from L natural join R" in
  List.iter
    (fun scheme ->
      let outcome = Protocol.run_exn scheme env client ~query in
      Alcotest.(check bool)
        (family_name scheme ^ ": empty relation correct")
        true (Outcome.correct outcome);
      Alcotest.(check int)
        (family_name scheme ^ ": empty result")
        0
        (Relation.cardinality outcome.Outcome.result);
      let sf = Outcome.superset_factor outcome in
      Alcotest.(check bool)
        (family_name scheme ^ ": superset factor finite")
        true
        (Float.is_finite sf && sf >= 0.0))
    Protocol.all_schemes

(* ------------------------------------------------------------------ *)
(* Fault-spec parser (the CLI surface). *)

let test_spec_parses () =
  (match Fault.of_spec "drop:mediator->client:RC:times=1;retries=1;seed=5" with
  | Error e -> Alcotest.failf "spec rejected: %s" e
  | Ok plan ->
    Alcotest.(check int) "retries" 1 (Fault.max_retries (Some plan));
    Alcotest.(check bool) "retryable" true (Fault.retryable (Some plan)));
  match Fault.of_spec "byzantine:2:garbage-paillier" with
  | Error e -> Alcotest.failf "byzantine spec rejected: %s" e
  | Ok plan ->
    Alcotest.(check bool)
      "mode" true
      (Fault.byzantine_mode (Some plan) 2 = Some Fault.Garbage_paillier);
    Alcotest.(check bool) "byzantine not retryable" false (Fault.retryable (Some plan))

let test_spec_rejects_garbage () =
  List.iter
    (fun spec ->
      match Fault.of_spec spec with
      | Ok _ -> Alcotest.failf "accepted malformed spec %S" spec
      | Error _ -> ())
    [ "explode:client->mediator"; "drop"; "byzantine:x:garbage-paillier";
      "byzantine:1:lying"; "retries=many"; "drop:nowhere->client" ]

let test_spec_end_to_end () =
  match Fault.of_spec "drop:mediator->client:global-result" with
  | Error e -> Alcotest.failf "spec rejected: %s" e
  | Ok plan -> (
    match run_with (Some plan) Protocol.Plain with
    | Protocol.Ok _ -> Alcotest.fail "drop spec had no effect"
    | Protocol.Fault f ->
      Alcotest.(check bool) "timeout reported" true (contains f.Protocol.reason "never arrived"))

(* ------------------------------------------------------------------ *)
(* Differential conformance. *)

let canon relation = List.sort compare (List.map Tuple.encode (Relation.tuples relation))

let test_no_fault_differential () =
  (* Honest runs of every scheme agree with the Plain reference pipeline
     across join selectivities, including the empty join. *)
  List.iter
    (fun (rows, distinct, overlap) ->
      let spec =
        {
          small_spec with
          rows_left = rows;
          rows_right = rows;
          distinct_left = distinct;
          distinct_right = distinct;
          overlap;
          seed = 100 + rows + overlap;
        }
      in
      let env, client, query = Workload.scenario ~params:fast spec in
      let reference =
        match Protocol.run Protocol.Plain env client ~query with
        | Protocol.Ok o -> o
        | Protocol.Fault f -> Alcotest.failf "plain faulted honestly: %s" f.Protocol.reason
      in
      Alcotest.(check bool) "reference correct" true (Outcome.correct reference);
      List.iter
        (fun scheme ->
          let outcome = Protocol.run_exn scheme env client ~query in
          Alcotest.(check bool)
            (family_name scheme ^ ": correct")
            true (Outcome.correct outcome);
          Alcotest.(check bool)
            (family_name scheme ^ ": equals the plain reference")
            true
            (canon outcome.Outcome.result = canon reference.Outcome.result))
        Protocol.all_schemes)
    [ (6, 3, 2); (10, 5, 0); (12, 6, 6); (8, 4, 1) ]

(* Random fault plans over random schemes: the differential property —
   Ok implies correct; the only other allowed outcome is a typed Fault.
   Any escaped exception fails the property by propagating. *)
let gen_case =
  QCheck2.Gen.(
    let gen_scheme = oneofl Protocol.all_schemes in
    let gen_action =
      oneofl [ Fault.Drop; Fault.Truncate 4; Fault.Corrupt 2; Fault.Duplicate; Fault.Delay 0.01 ]
    in
    gen_scheme >>= fun scheme ->
    let applicable_modes =
      match scheme with
      | Protocol.Das _ -> [ Fault.Wrong_partition_ids; Fault.Malformed_ciphertexts ]
      | Protocol.Commutative _ ->
        [ Fault.Stale_commutative_key; Fault.Malformed_ciphertexts ]
      | Protocol.Private_matching _ ->
        [ Fault.Garbage_paillier; Fault.Malformed_ciphertexts ]
      | Protocol.Mobile_code -> [ Fault.Malformed_ciphertexts ]
      | Protocol.Plain -> []
    in
    let gen_byzantine =
      if applicable_modes = [] then return []
      else
        frequency
          [ (3, return []); (1, map (fun m -> [ (1, m) ]) (oneofl applicable_modes)) ]
    in
    let gen_rules =
      frequency
        [
          (1, return []);
          ( 4,
            map
              (fun (action, times, labelled) ->
                let label = if labelled then Some (final_label scheme) else None in
                [ Fault.rule ?label ~times action ])
              (triple gen_action (int_range 1 3) bool) );
        ]
    in
    map
      (fun (rules, byzantine, retries, seed) -> (scheme, rules, byzantine, retries, seed))
      (quad gen_rules gen_byzantine (int_range 0 2) nat))

let prop_differential_under_faults =
  QCheck_alcotest.to_alcotest ~rand:(seed_rand ())
    (QCheck2.Test.make
       ~name:"fault plans never yield a wrong answer or an untyped exception" ~count:200
       gen_case
       (fun (scheme, rules, byzantine, retries, seed) ->
         let plan = Fault.plan ~seed ~max_retries:retries ~byzantine rules in
         match run_with (Some plan) scheme with
         | Protocol.Ok outcome -> Outcome.correct outcome
         | Protocol.Fault f -> f.Protocol.reason <> ""))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fault"
    [
      ( "wire-fuzz",
        [
          prop_wire_fuzz;
          Alcotest.test_case "hostile list count" `Quick test_read_list_hostile_count;
          Alcotest.test_case "negative length" `Quick test_reader_negative_length;
        ] );
      ( "channel-faults",
        [
          Alcotest.test_case "drop detected" `Quick test_drop_detected;
          Alcotest.test_case "truncate detected" `Quick test_truncate_detected;
          Alcotest.test_case "corrupt detected" `Quick test_corrupt_detected;
          Alcotest.test_case "delivery drop detected" `Quick test_delivery_drop_detected;
          Alcotest.test_case "duplicate harmless" `Quick test_duplicate_is_harmless;
          Alcotest.test_case "delay harmless" `Quick test_delay_is_harmless;
        ] );
      ( "retry",
        [
          Alcotest.test_case "transient drop recovers" `Quick test_retry_recovers_transient_drop;
          Alcotest.test_case "budget exhausts" `Quick test_retry_budget_exhausts;
        ] );
      ( "byzantine",
        [ Alcotest.test_case "all modes detected" `Quick test_byzantine_detected ] );
      ( "outcome-edges",
        [
          Alcotest.test_case "empty join" `Quick test_outcome_empty_join;
          Alcotest.test_case "empty relation" `Quick test_outcome_empty_relation;
        ] );
      ( "fault-spec",
        [
          Alcotest.test_case "parses" `Quick test_spec_parses;
          Alcotest.test_case "rejects garbage" `Quick test_spec_rejects_garbage;
          Alcotest.test_case "end to end" `Quick test_spec_end_to_end;
        ] );
      ( "differential",
        [
          Alcotest.test_case "honest runs match plain" `Quick test_no_fault_differential;
          prop_differential_under_faults;
        ] );
    ]

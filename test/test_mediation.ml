(* Tests for the mediation substrate: wire format, credentials, policies,
   transcripts, catalog decomposition. *)

open Secmed_bigint
open Secmed_crypto
open Secmed_relalg
open Secmed_mediation

let prng () = Prng.of_int_seed 404
let group () = Group.default ~bits:160

(* ------------------------------------------------------------------ *)
(* Wire. *)

let test_wire_roundtrip () =
  let w = Wire.writer () in
  Wire.write_int w 42;
  Wire.write_int w (-42);
  Wire.write_string w "hello";
  Wire.write_string w "";
  Wire.write_bigint w (Bigint.of_string "123456789012345678901234567890");
  Wire.write_list w (fun x -> Wire.write_int w x) [ 1; 2; 3 ];
  let r = Wire.reader (Wire.contents w) in
  Alcotest.(check int) "int" 42 (Wire.read_int r);
  Alcotest.(check int) "negative int" (-42) (Wire.read_int r);
  Alcotest.(check string) "string" "hello" (Wire.read_string r);
  Alcotest.(check string) "empty string" "" (Wire.read_string r);
  Alcotest.(check string) "bigint" "123456789012345678901234567890"
    (Bigint.to_string (Wire.read_bigint r));
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (Wire.read_list r (fun () -> Wire.read_int r));
  Alcotest.(check bool) "at end" true (Wire.at_end r);
  Wire.expect_end r

let test_wire_truncation () =
  let w = Wire.writer () in
  Wire.write_string w "full message";
  let blob = Wire.contents w in
  let truncated = String.sub blob 0 (String.length blob - 2) in
  (match Wire.read_string (Wire.reader truncated) with
  | _ -> Alcotest.fail "truncated read should raise Wire.Malformed"
  | exception Wire.Malformed _ -> ());
  let r = Wire.reader (blob ^ "junk") in
  let _ = Wire.read_string r in
  match Wire.expect_end r with
  | _ -> Alcotest.fail "trailing bytes should raise Wire.Malformed"
  | exception Wire.Malformed _ -> ()

let prop_wire_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"wire string list roundtrip" ~count:200
       QCheck2.Gen.(small_list (string_size (int_range 0 50)))
       (fun strings ->
         let w = Wire.writer () in
         Wire.write_list w (Wire.write_string w) strings;
         let r = Wire.reader (Wire.contents w) in
         let out = Wire.read_list r (fun () -> Wire.read_string r) in
         Wire.expect_end r;
         out = strings))

(* ------------------------------------------------------------------ *)
(* Credentials. *)

let make_ca_and_key () =
  let g = group () in
  let rng = prng () in
  let ca = Credential.Authority.create rng g in
  let key = Elgamal.keygen rng g in
  (ca, key, rng)

let test_credential_issue_verify () =
  let ca, key, rng = make_ca_and_key () in
  let cred =
    Credential.Authority.issue ca rng
      ~properties:[ Credential.property "role" "physician"; Credential.property "org" "clinic-a" ]
      (Elgamal.public key)
  in
  Alcotest.(check bool) "verifies" true (Credential.Authority.verify ca cred);
  Alcotest.(check bool) "has property" true
    (Credential.has_property cred (Credential.property "role" "physician"));
  Alcotest.(check bool) "lacks property" false
    (Credential.has_property cred (Credential.property "role" "admin"));
  Alcotest.(check bool) "positive size" true (Credential.size cred > 0)

let test_credential_foreign_ca_rejected () =
  let ca, key, rng = make_ca_and_key () in
  let other_ca = Credential.Authority.create ~name:"rogue" rng (group ()) in
  let cred =
    Credential.Authority.issue other_ca rng
      ~properties:[ Credential.property "role" "physician" ]
      (Elgamal.public key)
  in
  Alcotest.(check bool) "foreign issuer rejected" false (Credential.Authority.verify ca cred)

let test_credential_serial_increments () =
  let ca, key, rng = make_ca_and_key () in
  let c1 = Credential.Authority.issue ca rng ~properties:[] (Elgamal.public key) in
  let c2 = Credential.Authority.issue ca rng ~properties:[] (Elgamal.public key) in
  Alcotest.(check bool) "distinct serials" true (c1.Credential.serial <> c2.Credential.serial)

let test_identity_certificate () =
  let ca, key, rng = make_ca_and_key () in
  let cert = Credential.Authority.issue_identity ca rng ~identity:"alice" (Elgamal.public key) in
  Alcotest.(check bool) "verifies" true
    (Credential.Authority.verify_identity ca cert (Elgamal.public key));
  let other = Elgamal.keygen rng (group ()) in
  Alcotest.(check bool) "wrong key" false
    (Credential.Authority.verify_identity ca cert (Elgamal.public other))

(* ------------------------------------------------------------------ *)
(* Policy. *)

let physician = Credential.property "role" "physician"
let nurse = Credential.property "role" "nurse"
let clinic = Credential.property "org" "clinic-a"

let sample_relation =
  Relation.of_rows
    (Schema.of_list [ ("patient", Value.Tstring); ("sensitive", Value.Tbool) ])
    [ [ Value.Str "p1"; Value.Bool true ]; [ Value.Str "p2"; Value.Bool false ] ]

let policy =
  Policy.make
    [
      { Policy.requires = [ physician; clinic ]; grant = Policy.Full };
      { Policy.requires = [ nurse ];
        grant = Policy.Filtered (Predicate.eq_const "sensitive" (Value.Bool false)) };
    ]

let test_policy_full () =
  match Policy.apply policy [ physician; clinic ] sample_relation with
  | Some r -> Alcotest.(check int) "full access" 2 (Relation.cardinality r)
  | None -> Alcotest.fail "expected grant"

let test_policy_filtered () =
  match Policy.apply policy [ nurse ] sample_relation with
  | Some r -> Alcotest.(check int) "filtered rows" 1 (Relation.cardinality r)
  | None -> Alcotest.fail "expected filtered grant"

let test_policy_deny () =
  Alcotest.(check bool) "default deny" true (Policy.apply policy [] sample_relation = None);
  Alcotest.(check bool) "physician alone insufficient" true
    (Policy.apply policy [ physician ] sample_relation = None)

let test_policy_rule_order () =
  (* First matching rule wins. *)
  let p =
    Policy.make
      [
        { Policy.requires = [ nurse ]; grant = Policy.Deny };
        { Policy.requires = []; grant = Policy.Full };
      ]
  in
  Alcotest.(check bool) "deny first" true (Policy.apply p [ nurse ] sample_relation = None);
  Alcotest.(check bool) "fallthrough full" true
    (Policy.apply p [ physician ] sample_relation <> None)

let test_open_policy () =
  match Policy.apply Policy.open_policy [] sample_relation with
  | Some r -> Alcotest.(check int) "everything" 2 (Relation.cardinality r)
  | None -> Alcotest.fail "open policy must grant"

(* ------------------------------------------------------------------ *)
(* Transcript. *)

let test_transcript_accounting () =
  let t = Transcript.create () in
  let open Transcript in
  record t ~sender:Client ~receiver:Mediator ~label:"query" ~size:100;
  record t ~sender:Mediator ~receiver:(Source 1) ~label:"partial" ~size:50;
  record t ~sender:(Source 1) ~receiver:Mediator ~label:"result" ~size:500;
  record t ~sender:Mediator ~receiver:Client ~label:"answer" ~size:400;
  Alcotest.(check int) "count" 4 (message_count t);
  Alcotest.(check int) "total" 1050 (total_bytes t);
  Alcotest.(check int) "link" 100 (bytes_on_link t Client Mediator);
  Alcotest.(check int) "reverse link" 400 (bytes_on_link t Mediator Client);
  Alcotest.(check int) "sent by mediator" 450 (bytes_sent_by t Mediator);
  Alcotest.(check int) "received by mediator" 600 (bytes_received_by t Mediator);
  Alcotest.(check int) "sends" 2 (sends_by t Mediator);
  Alcotest.(check int) "parties" 3 (List.length (parties t));
  Alcotest.(check (list string)) "labels seen by client" [ "answer" ] (labels_seen_by t Client)

let test_transcript_rounds () =
  let t = Transcript.create () in
  let open Transcript in
  record t ~sender:Client ~receiver:Mediator ~label:"a" ~size:1;
  record t ~sender:Client ~receiver:Mediator ~label:"b" ~size:1;
  record t ~sender:Mediator ~receiver:Client ~label:"c" ~size:1;
  record t ~sender:Client ~receiver:Mediator ~label:"d" ~size:1;
  (* Runs: CC | M | C -> 3 alternations. *)
  Alcotest.(check int) "rounds" 3 (rounds t Client Mediator);
  Alcotest.(check int) "unrelated link" 0 (rounds t Client (Source 9))

let test_transcript_diagram () =
  let t = Transcript.create () in
  Transcript.record t ~sender:Client ~receiver:Mediator ~label:"q" ~size:10;
  Transcript.record t ~sender:Mediator ~receiver:(Source 1) ~label:"pq" ~size:5;
  let diagram = Transcript.flow_diagram t in
  Alcotest.(check bool) "mentions parties" true
    (List.for_all
       (fun needle ->
         let nl = String.length needle and hl = String.length diagram in
         let rec go i = i + nl <= hl && (String.sub diagram i nl = needle || go (i + 1)) in
         go 0)
       [ "Client"; "Mediator"; "Source1"; "q (10B)" ]);
  let summary = Transcript.summary t in
  Alcotest.(check bool) "summary totals" true
    (let needle = "total: 2 messages, 15 bytes" in
     let nl = String.length needle and hl = String.length summary in
     let rec go i = i + nl <= hl && (String.sub summary i nl = needle || go (i + 1)) in
     go 0)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let index_of haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    if i + nl > hl then None
    else if String.sub haystack i nl = needle then Some i
    else go (i + 1)
  in
  go 0

let test_transcript_rounds_alternation () =
  let t = Transcript.create () in
  let open Transcript in
  (* Interleave traffic on an unrelated link: it must not break up runs
     on the link under measurement. *)
  record t ~sender:(Source 1) ~receiver:Mediator ~label:"s1a" ~size:1;
  record t ~sender:Client ~receiver:Mediator ~label:"a" ~size:1;
  record t ~sender:(Source 2) ~receiver:Mediator ~label:"s2a" ~size:1;
  record t ~sender:Client ~receiver:Mediator ~label:"b" ~size:1;
  record t ~sender:Mediator ~receiver:Client ~label:"c" ~size:1;
  record t ~sender:Mediator ~receiver:(Source 1) ~label:"s1b" ~size:1;
  record t ~sender:Mediator ~receiver:Client ~label:"d" ~size:1;
  (* Client link runs: CC | MM -> 2 alternations, interleavings ignored. *)
  Alcotest.(check int) "runs collapse" 2 (rounds t Client Mediator);
  (* The link is unordered: both orientations report the same count. *)
  Alcotest.(check int) "symmetric" (rounds t Client Mediator) (rounds t Mediator Client);
  Alcotest.(check int) "source1 link" 2 (rounds t (Source 1) Mediator);
  (* Single message = single run. *)
  Alcotest.(check int) "source2 link" 1 (rounds t (Source 2) Mediator)

let test_flow_diagram_elision () =
  let t = Transcript.create () in
  let long = "very-long-message-label-that-cannot-fit" in
  Transcript.record t ~sender:Transcript.Client ~receiver:Transcript.Mediator ~label:long
    ~size:123456;
  Transcript.record t ~sender:Transcript.Mediator ~receiver:Transcript.Client ~label:"ok"
    ~size:1;
  let diagram = Transcript.flow_diagram t in
  let full = Printf.sprintf "%s (%dB)" long 123456 in
  Alcotest.(check bool) "full annotation elided" false (contains diagram full);
  Alcotest.(check bool) "elision marker present" true (contains diagram "..");
  Alcotest.(check bool) "short annotation intact" true (contains diagram "ok (1B)");
  (* The elided annotation must stay between the party lifelines: every
     diagram row is bounded by the column grid width. *)
  List.iter
    (fun line ->
      Alcotest.(check bool) "row within grid" true (String.length line <= 2 * 24))
    (String.split_on_char '\n' diagram)

let test_summary_link_ordering () =
  let t = Transcript.create () in
  let open Transcript in
  (* First appearance order deliberately differs from any alphabetical or
     party-numeric order. *)
  record t ~sender:(Source 2) ~receiver:Mediator ~label:"x" ~size:7;
  record t ~sender:Client ~receiver:Mediator ~label:"y" ~size:3;
  record t ~sender:(Source 2) ~receiver:Mediator ~label:"z" ~size:9;
  record t ~sender:Mediator ~receiver:Client ~label:"w" ~size:4;
  let s = summary t in
  let pos needle =
    match index_of s needle with
    | Some i -> i
    | None -> Alcotest.failf "summary missing %S:\n%s" needle s
  in
  let s2m = pos "Source2    -> Mediator" in
  let c2m = pos "Client     -> Mediator" in
  let m2c = pos "Mediator   -> Client" in
  Alcotest.(check bool) "first-appearance order" true (s2m < c2m && c2m < m2c);
  (* Repeated link aggregates rather than re-listing. *)
  Alcotest.(check bool) "source2 link aggregated" true
    (contains s "Source2    -> Mediator   :   2 messages,       16 bytes");
  Alcotest.(check bool) "totals last" true (pos "total: 4 messages, 23 bytes" > m2c)

let test_transcript_empty () =
  let t = Transcript.create () in
  Alcotest.(check int) "count" 0 (Transcript.message_count t);
  Alcotest.(check int) "bytes" 0 (Transcript.total_bytes t);
  Alcotest.(check int) "parties" 0 (List.length (Transcript.parties t));
  Alcotest.(check int) "rounds" 0 (Transcript.rounds t Transcript.Client Transcript.Mediator);
  Alcotest.(check int) "sends" 0 (Transcript.sends_by t Transcript.Mediator);
  Alcotest.(check bool) "summary totals" true
    (contains (Transcript.summary t) "total: 0 messages, 0 bytes");
  (* No parties: the diagram degenerates to the two (empty) header rows. *)
  Alcotest.(check string) "diagram" "\n\n" (Transcript.flow_diagram t)

(* ------------------------------------------------------------------ *)
(* Catalog. *)

let schema_a = Schema.of_list [ ("k", Value.Tint); ("x", Value.Tint) ]
let schema_b = Schema.of_list [ ("k", Value.Tint); ("y", Value.Tint) ]

let catalog =
  Catalog.make
    [
      { Catalog.relation = "A"; source = 1; schema = schema_a; source_relation = "A" };
      { Catalog.relation = "B"; source = 2; schema = schema_b; source_relation = "B" };
      { Catalog.relation = "C"; source = 1; schema = schema_b; source_relation = "C" };
    ]

let parse = Secmed_sql.Parser.parse

let test_decompose_natural () =
  let d = Catalog.decompose catalog (parse "select * from A natural join B") in
  Alcotest.(check (list string)) "join attrs" [ "k" ] d.Catalog.join_attrs;
  Alcotest.(check string) "partial left" "select * from A" d.Catalog.partial_query_left;
  Alcotest.(check string) "partial right" "select * from B" d.Catalog.partial_query_right;
  Alcotest.(check int) "left source" 1 d.Catalog.left.Catalog.source;
  Alcotest.(check int) "right source" 2 d.Catalog.right.Catalog.source

let test_decompose_on () =
  let d = Catalog.decompose catalog (parse "select * from A join B on A.k = B.k") in
  Alcotest.(check (list string)) "join attrs" [ "k" ] d.Catalog.join_attrs

let test_decompose_residuals () =
  let d =
    Catalog.decompose catalog (parse "select distinct k, x from A natural join B where x > 3")
  in
  Alcotest.(check bool) "where captured" true (d.Catalog.residual_where <> None);
  Alcotest.(check (option (list string))) "projection" (Some [ "k"; "x" ]) d.Catalog.projection;
  Alcotest.(check bool) "distinct" true d.Catalog.distinct

let test_decompose_unsupported () =
  let rejects q =
    match Catalog.decompose catalog (parse q) with
    | exception Catalog.Unsupported _ -> ()
    | _ -> Alcotest.failf "should reject %S" q
  in
  rejects "select * from A";
  rejects "select * from A natural join B natural join C";
  rejects "select * from A natural join C";
  (* same source *)
  rejects "select * from A natural join Unknown";
  rejects "select * from A join B on A.x = B.y";
  (* different bare names *)
  rejects "select * from A join B on A.k = B.ghost"

let test_global_schema () =
  let d = Catalog.decompose catalog (parse "select * from A natural join B") in
  let schema = Catalog.global_schema catalog d in
  Alcotest.(check (list string)) "global schema" [ "A.k"; "A.x"; "B.y" ] (Schema.names schema)

let () =
  Alcotest.run "mediation"
    [
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "truncation" `Quick test_wire_truncation;
          prop_wire_roundtrip;
        ] );
      ( "credential",
        [
          Alcotest.test_case "issue/verify" `Quick test_credential_issue_verify;
          Alcotest.test_case "foreign CA" `Quick test_credential_foreign_ca_rejected;
          Alcotest.test_case "serials" `Quick test_credential_serial_increments;
          Alcotest.test_case "identity certificate" `Quick test_identity_certificate;
        ] );
      ( "policy",
        [
          Alcotest.test_case "full grant" `Quick test_policy_full;
          Alcotest.test_case "filtered grant" `Quick test_policy_filtered;
          Alcotest.test_case "deny" `Quick test_policy_deny;
          Alcotest.test_case "rule order" `Quick test_policy_rule_order;
          Alcotest.test_case "open policy" `Quick test_open_policy;
        ] );
      ( "transcript",
        [
          Alcotest.test_case "accounting" `Quick test_transcript_accounting;
          Alcotest.test_case "rounds" `Quick test_transcript_rounds;
          Alcotest.test_case "diagram/summary" `Quick test_transcript_diagram;
          Alcotest.test_case "rounds alternation" `Quick test_transcript_rounds_alternation;
          Alcotest.test_case "diagram elision" `Quick test_flow_diagram_elision;
          Alcotest.test_case "summary link ordering" `Quick test_summary_link_ordering;
          Alcotest.test_case "empty transcript" `Quick test_transcript_empty;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "natural join" `Quick test_decompose_natural;
          Alcotest.test_case "join on" `Quick test_decompose_on;
          Alcotest.test_case "residual clauses" `Quick test_decompose_residuals;
          Alcotest.test_case "unsupported queries" `Quick test_decompose_unsupported;
          Alcotest.test_case "global schema" `Quick test_global_schema;
        ] );
    ]

(* Networked-transport suite (DESIGN.md §11): the incremental frame
   decoder, the typed session codec, the connection mux, and — the heart
   of it — differential tests that run real forked mediator/datasource
   processes on 127.0.0.1 and check the distributed execution is
   bit-identical to the in-process one, byte-accounted three independent
   ways.  Chaos tests interpose a byte-level fault proxy on a live link
   and check each damage mode surfaces as the same typed outcome as its
   simulated counterpart. *)

open Secmed_relalg
open Secmed_mediation
open Secmed_core
open Secmed_net
module R = Resilience
module Obs = Secmed_obs

let fast = { Env.group_bits = 160; paillier_bits = 384 }

let small_spec =
  {
    Workload.default with
    rows_left = 10;
    rows_right = 10;
    distinct_left = 5;
    distinct_right = 5;
    overlap = 3;
    extra_attrs = 1;
  }

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let schemes = [ "das"; "commutative"; "pm"; "plain"; "mobile-code" ]

(* ------------------------------------------------------------------ *)
(* Wire.Stream: chunk boundaries must be invisible. *)

let sample_frames =
  [ ""; "a"; String.init 300 (fun i -> Char.chr (i mod 256)); "end-of-sample" ]

let drain stream =
  let rec go acc =
    match Wire.Stream.next_frame stream with
    | Some body -> go (body :: acc)
    | None -> List.rev acc
  in
  go []

let test_stream_split_at_every_offset () =
  let whole = String.concat "" (List.map Wire.frame sample_frames) in
  for cut = 0 to String.length whole do
    let s = Wire.Stream.create () in
    Wire.Stream.feed s (String.sub whole 0 cut);
    Wire.Stream.feed s (String.sub whole cut (String.length whole - cut));
    Alcotest.(check (list string))
      (Printf.sprintf "split at offset %d" cut)
      sample_frames (drain s)
  done

let test_stream_byte_by_byte () =
  let whole = String.concat "" (List.map Wire.frame sample_frames) in
  let s = Wire.Stream.create () in
  let got = ref [] in
  String.iter
    (fun c ->
      Wire.Stream.feed s (String.make 1 c);
      got := !got @ drain s)
    whole;
  Alcotest.(check (list string)) "one byte at a time" sample_frames !got;
  Alcotest.(check int) "buffer drained" 0 (Wire.Stream.buffered s)

let test_stream_incomplete_frame_waits () =
  let body = String.make 40 'x' in
  let framed = Wire.frame body in
  let s = Wire.Stream.create () in
  Wire.Stream.feed s (String.sub framed 0 (String.length framed - 1));
  Alcotest.(check bool) "incomplete yields nothing" true (Wire.Stream.next_frame s = None);
  Wire.Stream.feed s (String.sub framed (String.length framed - 1) 1);
  Alcotest.(check bool) "last byte completes it" true (Wire.Stream.next_frame s = Some body)

let test_stream_oversized_frame_rejected () =
  let s = Wire.Stream.create ~max_frame:16 () in
  Wire.Stream.feed s (Wire.frame (String.make 64 'x'));
  match Wire.Stream.next_frame s with
  | exception Wire.Malformed _ -> ()
  | _ -> Alcotest.fail "a frame above max_frame must be rejected"

(* ------------------------------------------------------------------ *)
(* Frame codec. *)

let sample_failure =
  { Fault.phase = "source-evaluate"; party = Transcript.Source 2; reason = "it broke" }

let roundtrip_frames =
  [
    Frame.Hello { role = Transcript.Client; scenario = "abcd1234" };
    Frame.Hello { role = Transcript.Source 7; scenario = "" };
    Frame.Hello_ok { scenario = "abcd1234" };
    Frame.Busy "at capacity";
    Frame.Query
      { scheme = "pm"; query = "select * from L natural join R";
        fault_spec = "drop:mediator->source1;retries=2"; deadline = 1.25; fallback = true;
        trace = false };
    Frame.Query
      { scheme = "das"; query = "q"; fault_spec = ""; deadline = 0.; fallback = false;
        trace = true };
    Frame.Session_start
      { session = 3; epoch = 5; attempt = 2; scheme = "das"; query = "q"; fault_spec = "";
        trace_id = ""; trace_parent = -1 };
    Frame.Session_start
      { session = 3; epoch = 6; attempt = 3; scheme = "pm"; query = "q"; fault_spec = "";
        trace_id = "s3"; trace_parent = 0 };
    Frame.Msg
      { session = 3; epoch = 5; seq = 12; sender = Transcript.Mediator;
        receiver = Transcript.Source 1; label = "rewritten-query";
        declared = 5; payload = "\x00\xffabc" };
    Frame.Report { session = 3; epoch = 5; status = Frame.St_ok };
    Frame.Report { session = 3; epoch = 5; status = Frame.St_failed sample_failure };
    Frame.Report { session = 3; epoch = 5; status = Frame.St_aborted };
    Frame.Abort { session = 3; epoch = 5; failure = sample_failure };
    Frame.Session_result
      { session = 3;
        result =
          Frame.W_served
            { w_scheme = "pm"; w_attempts = 2; w_degraded = Some ("das", "budget spent");
              w_link_stats =
                [ (Transcript.Client, 10, 20); (Transcript.Source 1, 30, 40) ] } };
    Frame.Session_result
      { session = 4; result = Frame.W_unserved [ ("pm", sample_failure, 3) ] };
    Frame.Session_end { session = 9 };
    Frame.Span_batch
      { session = 3; party = Transcript.Source 2; parent = 4; payload = "\x00\x01spans" };
    Frame.Span_batch
      { session = 3; party = Transcript.Mediator; parent = -1; payload = "" };
    Frame.Stats_request;
    Frame.Stats { payload = "{\"uptime_seconds\":1.5}" };
    Frame.Ping;
    Frame.Health { h_role = Transcript.Mediator; h_draining = false; h_active = 3 };
    Frame.Health { h_role = Transcript.Source 2; h_draining = true; h_active = 0 };
    Frame.Drain { scenario = "abcd1234"; deadline = 12.5 };
    Frame.Drain { scenario = ""; deadline = 0. };
    Frame.Drain_ok;
    Frame.Draining "mediator is draining; retry after restart";
  ]

let test_frame_roundtrip () =
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Frame.tag_name f ^ " roundtrips") true
        (Frame.decode (Frame.encode f) = f))
    roundtrip_frames

let test_frame_rejects_garbage () =
  match Frame.decode "\x2a\x00garbage" with
  | exception Wire.Malformed _ -> ()
  | _ -> Alcotest.fail "garbage must not decode"

(* The millisecond encoding must not mangle deadlines. *)
let test_frame_deadline_precision () =
  match Frame.decode (Frame.encode (Frame.Query
      { scheme = "das"; query = "q"; fault_spec = ""; deadline = 0.75; fallback = false;
        trace = false }))
  with
  | Frame.Query { deadline; _ } -> Alcotest.(check (float 1e-9)) "0.75s survives" 0.75 deadline
  | _ -> Alcotest.fail "not a Query"

(* ------------------------------------------------------------------ *)
(* Mux: frames that race in behind a Session_start must not be lost. *)

let socket_pair () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (Io.of_fd ~peer:"a" a, Io.of_fd ~peer:"b" b)

let msg ~seq label =
  Frame.Msg
    { session = 1; epoch = 1; seq; sender = Transcript.Mediator;
      receiver = Transcript.Source 1; label; declared = 2; payload = "xy" }

let test_mux_parks_frames_before_subscription () =
  let a, b = socket_pair () in
  Fun.protect ~finally:(fun () -> Io.close a; Io.close b) @@ fun () ->
  let send f = Io.send_frame a (Frame.encode f) in
  (* Burst: announcement plus the frames right behind it, all on the
     wire before the consumer even creates its handler. *)
  send (Frame.Session_start
          { session = 1; epoch = 1; attempt = 1; scheme = "das"; query = "q"; fault_spec = "";
            trace_id = ""; trace_parent = -1 });
  send (msg ~seq:0 "first");
  send (msg ~seq:1 "second");
  let mux = Endpoint.Mux.create b in
  (match Endpoint.Mux.next_control mux ~timeout:5. with
  | Frame.Session_start { session; _ } -> Alcotest.(check int) "announced" 1 session
  | f -> Alcotest.fail ("expected announcement, got " ^ Frame.tag_name f));
  (match Endpoint.Mux.next mux ~session:1 ~timeout:5. with
  | Frame.Session_start _ -> ()
  | f -> Alcotest.fail ("expected parked Session_start, got " ^ Frame.tag_name f));
  (match Endpoint.Mux.next mux ~session:1 ~timeout:5. with
  | Frame.Msg { label = "first"; _ } -> ()
  | f -> Alcotest.fail ("expected first msg, got " ^ Frame.tag_name f));
  match Endpoint.Mux.next mux ~session:1 ~timeout:5. with
  | Frame.Msg { label = "second"; _ } -> ()
  | f -> Alcotest.fail ("expected second msg, got " ^ Frame.tag_name f)

let test_mux_drops_frames_of_closed_sessions () =
  let a, b = socket_pair () in
  Fun.protect ~finally:(fun () -> Io.close a; Io.close b) @@ fun () ->
  let mux = Endpoint.Mux.create b in
  Endpoint.Mux.subscribe mux 1;
  Endpoint.Mux.unsubscribe mux 1;
  Io.send_frame a (Frame.encode (msg ~seq:0 "stale"));
  Io.send_frame a (Frame.encode (Frame.Busy "marker"));
  (* The control frame arrives, proving the stale Msg was dropped rather
     than misrouted onto the control queue ahead of it. *)
  match Endpoint.Mux.next_control mux ~timeout:5. with
  | Frame.Busy "marker" -> ()
  | f -> Alcotest.fail ("expected the marker, got " ^ Frame.tag_name f)

(* Tombstone lifecycle.  A marker control frame after the payload under
   test synchronizes with the recv thread: the mux routes frames in wire
   order, so once the marker is observable the verdicts before it are
   final. *)
let mux_sync a mux =
  Io.send_frame a (Frame.encode (Frame.Busy "sync"));
  match Endpoint.Mux.next_control mux ~timeout:5. with
  | Frame.Busy "sync" -> ()
  | f -> Alcotest.fail ("expected sync marker, got " ^ Frame.tag_name f)

let test_mux_tombstone_drops_counted () =
  let a, b = socket_pair () in
  Fun.protect ~finally:(fun () -> Io.close a; Io.close b) @@ fun () ->
  let mux = Endpoint.Mux.create b in
  Endpoint.Mux.subscribe mux 1;
  Endpoint.Mux.unsubscribe mux 1;
  Alcotest.(check int) "one tombstone" 1 (Endpoint.Mux.tombstones mux);
  for seq = 0 to 2 do
    Io.send_frame a (Frame.encode (msg ~seq "stale"))
  done;
  mux_sync a mux;
  Alcotest.(check int) "three drops" 3 (Endpoint.Mux.dropped mux);
  Alcotest.(check int) "still one tombstone" 1 (Endpoint.Mux.tombstones mux)

let test_mux_tombstones_bounded () =
  let a, b = socket_pair () in
  Fun.protect ~finally:(fun () -> Io.close a; Io.close b) @@ fun () ->
  let mux = Endpoint.Mux.create ~max_tombstones:4 b in
  for sid = 1 to 10 do
    Endpoint.Mux.subscribe mux sid;
    Endpoint.Mux.unsubscribe mux sid
  done;
  Alcotest.(check int) "eviction keeps the cap" 4 (Endpoint.Mux.tombstones mux);
  (* FIFO eviction: session 1's tombstone is long gone, so its late
     frame is parked as an unknown session, not dropped; session 10's
     tombstone survives, so its late frame is dropped. *)
  Io.send_frame a (Frame.encode (msg ~seq:0 "late-evicted"));
  Io.send_frame a
    (Frame.encode
       (Frame.Msg
          { session = 10; epoch = 1; seq = 0; sender = Transcript.Mediator;
            receiver = Transcript.Source 1; label = "late-tombstoned"; declared = 2;
            payload = "xy" }));
  mux_sync a mux;
  Alcotest.(check int) "tombstoned frame dropped" 1 (Endpoint.Mux.dropped mux);
  match Endpoint.Mux.next mux ~session:1 ~timeout:5. with
  | Frame.Msg { label = "late-evicted"; _ } -> ()
  | f -> Alcotest.fail ("expected the parked frame, got " ^ Frame.tag_name f)

let test_mux_subscribe_resurrects_tombstoned_id () =
  let a, b = socket_pair () in
  Fun.protect ~finally:(fun () -> Io.close a; Io.close b) @@ fun () ->
  let mux = Endpoint.Mux.create b in
  Endpoint.Mux.subscribe mux 1;
  Endpoint.Mux.unsubscribe mux 1;
  (* The server reuses ids only with an epoch bump; the resubscribe must
     clear the tombstone so the revived session is routable again. *)
  Endpoint.Mux.subscribe mux 1;
  Alcotest.(check int) "tombstone cleared" 0 (Endpoint.Mux.tombstones mux);
  Io.send_frame a (Frame.encode (msg ~seq:0 "revived"));
  (match Endpoint.Mux.next mux ~session:1 ~timeout:5. with
  | Frame.Msg { label = "revived"; _ } -> ()
  | f -> Alcotest.fail ("expected the revived frame, got " ^ Frame.tag_name f));
  Alcotest.(check int) "nothing dropped" 0 (Endpoint.Mux.dropped mux)

(* A seeded concurrency stress: one producer interleaves the frames of
   many sessions on the wire (the interleaving drawn from a PRNG, so a
   failure replays exactly), while one consumer thread per session
   drains its queue concurrently.  Every session must see exactly its
   own frames, in order — nothing lost, duplicated, or cross-delivered
   through the shared stream. *)
let test_mux_concurrent_sessions_stress () =
  let sessions = 8 and frames_per_session = 40 in
  List.iter
    (fun round ->
      let a, b = socket_pair () in
      Fun.protect ~finally:(fun () -> Io.close a; Io.close b) @@ fun () ->
      let mux = Endpoint.Mux.create b in
      (* Fresh session ids per round: a closed session's id is a
         tombstone, never reused. *)
      let sid k = (round * 100) + k + 1 in
      let schedule =
        (* All (session, seq) pairs, shuffled by the round's seed. *)
        let all =
          Array.init (sessions * frames_per_session) (fun i ->
              (sid (i / frames_per_session), i mod frames_per_session))
        in
        Secmed_crypto.Prng.shuffle
          (Secmed_crypto.Prng.create ~seed:(Printf.sprintf "mux-stress-%d" round))
          all;
        all
      in
      let received = Array.make sessions [] in
      let errors = ref [] in
      let consumers =
        List.init sessions (fun k ->
            Endpoint.Mux.subscribe mux (sid k);
            Thread.create
              (fun () ->
                try
                  for _ = 1 to frames_per_session do
                    match Endpoint.Mux.next mux ~session:(sid k) ~timeout:10. with
                    | Frame.Msg { session; seq; label; _ } ->
                      received.(k) <- (session, seq, label) :: received.(k)
                    | f ->
                      errors := Frame.tag_name f :: !errors
                  done
                with Io.Transport_error msg -> errors := msg :: !errors)
              ())
      in
      Array.iter
        (fun (session, seq) ->
          Io.send_frame a
            (Frame.encode
               (Frame.Msg
                  { session; epoch = 1; seq; sender = Transcript.Mediator;
                    receiver = Transcript.Source 1;
                    label = Printf.sprintf "s%d-%d" session seq;
                    declared = 2; payload = "xy" })))
        schedule;
      List.iter Thread.join consumers;
      Alcotest.(check (list string)) "no consumer errors" [] !errors;
      (* A session's queue must replay its own subsequence of the wire,
         in wire order: the shuffle scrambles seqs within a session too,
         and the mux routes — it never reorders. *)
      List.iter
        (fun k ->
          let expected =
            Array.to_list schedule
            |> List.filter_map (fun (session, seq) ->
                   if session = sid k then
                     Some (session, seq, Printf.sprintf "s%d-%d" session seq)
                   else None)
          in
          Alcotest.(check bool)
            (Printf.sprintf "round %d session %d intact and in wire order" round (sid k))
            true
            (List.rev received.(k) = expected))
        (List.init sessions Fun.id))
    [ 0; 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Scenario digests. *)

let test_scenario_digest_deterministic () =
  Alcotest.(check string)
    "same spec, same digest"
    (Scenario.digest ~params:fast small_spec)
    (Scenario.digest ~params:fast small_spec);
  Alcotest.(check bool)
    "seed changes it" true
    (Scenario.digest ~params:fast small_spec
    <> Scenario.digest ~params:fast { small_spec with Workload.seed = small_spec.Workload.seed + 1 });
  Alcotest.(check bool)
    "crypto params change it" true
    (Scenario.digest ~params:fast small_spec <> Scenario.digest small_spec)

(* ------------------------------------------------------------------ *)
(* Loopback differential: forked processes vs in-process, bit for bit. *)

let messages_of tr =
  List.map
    (fun (m : Transcript.message) -> (m.seq, m.sender, m.receiver, m.label, m.size))
    (Transcript.messages tr)

let test_loopback_differential () =
  Loopback.with_cluster ~params:fast ~spec:small_spec @@ fun c ->
  List.iter
    (fun name ->
      let scheme = Option.get (Protocol.scheme_of_name name) in
      let reference =
        Protocol.run_exn scheme (Loopback.env c) (Loopback.client_of c)
          ~query:(Loopback.canonical_query c)
      in
      let response = Loopback.query c ~scheme:name () in
      let outcome =
        match response.Peer.result with
        | Protocol.Served o -> o
        | Protocol.Unserved tried ->
          Alcotest.failf "%s unserved: %a" name Protocol.pp_session_failures tried
      in
      Alcotest.(check int) (name ^ ": one attempt") 1 response.Peer.epochs;
      Alcotest.(check string)
        (name ^ ": bit-identical result")
        (Relation.to_string reference.Outcome.result)
        (Relation.to_string outcome.Outcome.result);
      Alcotest.(check bool)
        (name ^ ": identical transcript messages") true
        (messages_of reference.Outcome.transcript = messages_of outcome.Outcome.transcript);
      Alcotest.(check int)
        (name ^ ": same message count")
        (Transcript.message_count reference.Outcome.transcript)
        (Transcript.message_count outcome.Outcome.transcript);
      Alcotest.(check int)
        (name ^ ": same byte total")
        (Transcript.total_bytes reference.Outcome.transcript)
        (Transcript.total_bytes outcome.Outcome.transcript);
      Alcotest.(check bool)
        (name ^ ": identical primitive counters") true
        (reference.Outcome.counters = outcome.Outcome.counters);
      (* Byte accounting, way two: what the mediator process actually
         pushed through each socket route must equal the transcript's
         per-link totals (frames carry exactly the canonical payloads —
         no inflation, no elision). *)
      let tr = outcome.Outcome.transcript in
      List.iter
        (fun (party, out_bytes, in_bytes) ->
          Alcotest.(check int)
            (Printf.sprintf "%s: mediator->%s socket payload" name
               (Transcript.party_name party))
            (Transcript.bytes_on_link tr Transcript.Mediator party)
            out_bytes;
          Alcotest.(check int)
            (Printf.sprintf "%s: %s->mediator socket payload" name
               (Transcript.party_name party))
            (Transcript.bytes_on_link tr party Transcript.Mediator)
            in_bytes)
        response.Peer.link_stats;
      (* Way three: the client's raw socket byte counters bound its
         transcript share from above (framing and session-control
         overhead ride on top of the payloads). *)
      let cl_in = Transcript.bytes_on_link tr Transcript.Mediator Transcript.Client in
      let cl_out = Transcript.bytes_on_link tr Transcript.Client Transcript.Mediator in
      let sock_in, sock_out = response.Peer.socket_bytes in
      Alcotest.(check bool) (name ^ ": socket in >= payload in") true (sock_in >= cl_in);
      Alcotest.(check bool) (name ^ ": socket out >= payload out") true (sock_out >= cl_out))
    schemes

(* ------------------------------------------------------------------ *)
(* Chaos conformance: live stream damage = simulated damage, typed. *)

let chaos_rule ?times action =
  Fault.plan [ Fault.rule ~sender:Transcript.Mediator ~receiver:(Transcript.Source 1) ?times action ]

let served_exn name = function
  | Protocol.Served o -> o
  | Protocol.Unserved tried ->
    Alcotest.failf "%s unserved: %a" name Protocol.pp_session_failures tried

let test_chaos_corrupt_retried_then_served () =
  let plan = chaos_rule ~times:1 (Fault.Corrupt 2) in
  Loopback.with_cluster ~params:fast ~spec:small_spec ~chaos:[ (1, plan) ] @@ fun c ->
  let reference =
    Protocol.run_exn
      (Option.get (Protocol.scheme_of_name "commutative"))
      (Loopback.env c) (Loopback.client_of c) ~query:(Loopback.canonical_query c)
  in
  let response =
    Loopback.query c ~scheme:"commutative" ~fault_spec:"retries=2" ~fallback:false ()
  in
  let outcome = served_exn "commutative" response.Peer.result in
  Alcotest.(check int) "one retry" 2 response.Peer.epochs;
  Alcotest.(check string)
    "retried run still bit-identical"
    (Relation.to_string reference.Outcome.result)
    (Relation.to_string outcome.Outcome.result);
  match Loopback.chaos_events c 1 with
  | [ { Fault.event_action = Fault.Corrupt _; _ } ] -> ()
  | [ e ] -> Alcotest.failf "expected corrupt, got %s" (Fault.action_name e.Fault.event_action)
  | es -> Alcotest.failf "expected exactly one proxy event, got %d" (List.length es)

let test_chaos_drop_is_typed_timeout_fault () =
  let plan = chaos_rule ~times:1 Fault.Drop in
  Loopback.with_cluster ~params:fast ~spec:small_spec ~chaos:[ (1, plan) ] ~io_timeout:1.5
  @@ fun c ->
  let response =
    Loopback.query c ~scheme:"commutative" ~fault_spec:"retries=0" ~fallback:false ()
  in
  match response.Peer.result with
  | Protocol.Served _ -> Alcotest.fail "a dropped frame with no retries must not serve"
  | Protocol.Unserved [ (scheme, f) ] ->
    Alcotest.(check string) "scheme" "commutative" scheme;
    (* Same typed blame as the simulated Drop: the receiving party, at
       the phase awaiting the frame. *)
    let simulated =
      match
        Protocol.run_session
          ?fault:(Result.to_option (Fault.of_spec "drop:mediator->source1:times=1;retries=0"))
          ~chain:[]
          (Option.get (Protocol.scheme_of_name "commutative"))
          (Loopback.env c) (Loopback.client_of c) ~query:(Loopback.canonical_query c)
      with
      | Protocol.Unserved [ (_, sf) ] -> sf
      | _ -> Alcotest.fail "simulated drop must be unserved too"
    in
    if not (Transcript.party_equal f.Protocol.party simulated.Protocol.party) then
      Alcotest.failf "blame differs: wire %s at %s (%s), simulated %s at %s (%s)"
        (Transcript.party_name f.Protocol.party)
        f.Protocol.phase f.Protocol.reason
        (Transcript.party_name simulated.Protocol.party)
        simulated.Protocol.phase simulated.Protocol.reason;
    Alcotest.(check string) "same blamed phase" simulated.Protocol.phase f.Protocol.phase;
    Alcotest.(check bool) "reason names the missing frame" true
      (contains f.Protocol.reason "never arrived")
  | Protocol.Unserved tried ->
    Alcotest.failf "expected one failure: %a" Protocol.pp_session_failures tried

let test_chaos_duplicate_is_filtered () =
  let plan = chaos_rule ~times:1 Fault.Duplicate in
  Loopback.with_cluster ~params:fast ~spec:small_spec ~chaos:[ (1, plan) ] @@ fun c ->
  let response = Loopback.query c ~scheme:"das" () in
  let _ = served_exn "das" response.Peer.result in
  Alcotest.(check int) "duplicate absorbed without retry" 1 response.Peer.epochs;
  match Loopback.chaos_events c 1 with
  | [ e ] ->
    Alcotest.(check string) "the proxy duplicated" "duplicate"
      (Fault.action_name e.Fault.event_action)
  | es -> Alcotest.failf "expected exactly one proxy event, got %d" (List.length es)

let test_chaos_delay_trips_real_deadline () =
  let plan = chaos_rule ~times:1 (Fault.Delay 0.8) in
  Loopback.with_cluster ~params:fast ~spec:small_spec ~chaos:[ (1, plan) ] @@ fun c ->
  let response =
    Loopback.query c ~scheme:"commutative" ~deadline:0.35 ~fallback:false ()
  in
  match response.Peer.result with
  | Protocol.Served _ -> Alcotest.fail "a 0.8s stall must blow a 0.35s deadline"
  | Protocol.Unserved tried ->
    let _, f = List.hd (List.rev tried) in
    (* The same typed ending a simulated delay produces in-process. *)
    let simulated =
      let sim_plan = chaos_rule ~times:1 (Fault.Delay 0.8) in
      match
        Protocol.run_session ~fault:sim_plan ~chain:[]
          ~session:(R.session ~policy:{ R.default_policy with R.deadline_budget = Some 0.35 } ())
          (Option.get (Protocol.scheme_of_name "commutative"))
          (Loopback.env c) (Loopback.client_of c) ~query:(Loopback.canonical_query c)
      with
      | Protocol.Unserved tried -> snd (List.hd (List.rev tried))
      | Protocol.Served _ -> Alcotest.fail "simulated delay must be unserved too"
    in
    Alcotest.(check string) "deadline phase both ways" simulated.Protocol.phase f.Protocol.phase;
    Alcotest.(check string) "it is the deadline" "deadline" f.Protocol.phase

let test_chaos_truncate_severs_then_redials () =
  let plan = chaos_rule ~times:1 (Fault.Truncate 6) in
  Loopback.with_cluster ~params:fast ~spec:small_spec ~chaos:[ (1, plan) ] ~io_timeout:1.5
  @@ fun c ->
  let response =
    Loopback.query c ~scheme:"commutative" ~fault_spec:"retries=2" ~fallback:false ()
  in
  let _ = served_exn "commutative" response.Peer.result in
  Alcotest.(check int) "served on the redialed connection" 2 response.Peer.epochs;
  match Loopback.chaos_events c 1 with
  | [ { Fault.event_action = Fault.Truncate _; _ } ] -> ()
  | [ e ] -> Alcotest.failf "expected truncate, got %s" (Fault.action_name e.Fault.event_action)
  | es -> Alcotest.failf "expected exactly one proxy event, got %d" (List.length es)

(* ------------------------------------------------------------------ *)
(* Admission and handshake. *)

let test_server_at_capacity_refuses () =
  Loopback.with_cluster ~params:fast ~spec:small_spec ~max_sessions:0 @@ fun c ->
  match Loopback.query c ~scheme:"plain" () with
  | _ -> Alcotest.fail "a zero-capacity mediator must refuse"
  | exception Peer.Refused msg ->
    Alcotest.(check bool) "refusal names capacity" true (contains msg "at capacity")

let test_scenario_digest_mismatch_refused () =
  Loopback.with_cluster ~params:fast ~spec:small_spec @@ fun c ->
  match
    Peer.run ~host:"127.0.0.1" ~port:(Loopback.port c) ~scenario:"0000deadbeef"
      ~scheme:"plain" ~query:(Loopback.canonical_query c) (Loopback.env c)
      (Loopback.client_of c)
  with
  | _ -> Alcotest.fail "a divergent scenario digest must be refused"
  | exception Peer.Refused msg ->
    Alcotest.(check bool) "refusal names the digest" true (contains msg "digest mismatch")

(* Admission is a slot machine, not a one-way valve: a full mediator
   refuses the (N+1)th session with the typed Busy, and a completed
   session frees its slot for the next arrival. *)
let test_admission_slot_freed_after_completion () =
  let plan = chaos_rule ~times:1 (Fault.Delay 1.2) in
  Loopback.with_cluster ~params:fast ~spec:small_spec ~chaos:[ (1, plan) ] ~max_sessions:1
  @@ fun c ->
  (* Session A occupies the only slot: the delayed source frame holds it
     in flight long enough to observe the refusal deterministically. *)
  let a_result = ref None in
  let a_thread =
    Thread.create
      (fun () ->
        a_result := Some (Loopback.query c ~scheme:"commutative" ~fallback:false ()))
      ()
  in
  Thread.delay 0.4;
  (* B arrives while A holds the slot: typed backpressure, not a hang. *)
  (match Loopback.query c ~scheme:"plain" () with
  | _ -> Alcotest.fail "the second concurrent session must be refused"
  | exception Peer.Refused msg ->
    Alcotest.(check bool) "refusal names capacity" true (contains msg "at capacity"));
  Thread.join a_thread;
  (match !a_result with
  | Some { Peer.result; _ } -> ignore (served_exn "commutative" result)
  | None -> Alcotest.fail "session A vanished");
  (* A completed, so its slot is free: C must be served, not refused. *)
  let c_response = Loopback.query c ~scheme:"plain" () in
  ignore (served_exn "plain" c_response.Peer.result)

(* The source connection pool isolates transport faults: with two pooled
   connections per source, session ids bind slots round-robin (sid 1 and
   3 share slot 0, sid 2 rides slot 1), so a severed pooled link costs
   the bound session one retry (lazy redial, exactly like the
   single-connection case) and the other slot's sessions nothing. *)
let test_pooled_connection_sever_isolated () =
  let plan = chaos_rule ~times:1 (Fault.Truncate 6) in
  Loopback.with_cluster ~params:fast ~spec:small_spec ~chaos:[ (1, plan) ]
    ~source_conns:2 ~io_timeout:1.5
  @@ fun c ->
  (* sid 1 on slot 0: the truncate severs its pooled connection
     mid-attempt; the retry redials the slot and serves. *)
  let r1 = Loopback.query c ~scheme:"commutative" ~fault_spec:"retries=2" ~fallback:false () in
  ignore (served_exn "commutative" r1.Peer.result);
  Alcotest.(check int) "bound session paid one retry" 2 r1.Peer.epochs;
  (* sid 2 on slot 1: a different pooled connection — never faulted. *)
  let r2 = Loopback.query c ~scheme:"commutative" ~fault_spec:"retries=2" ~fallback:false () in
  ignore (served_exn "commutative" r2.Peer.result);
  Alcotest.(check int) "other slot untouched" 1 r2.Peer.epochs;
  (* sid 3 back on slot 0: the redialed incarnation serves first try. *)
  let r3 = Loopback.query c ~scheme:"commutative" ~fault_spec:"retries=2" ~fallback:false () in
  ignore (served_exn "commutative" r3.Peer.result);
  Alcotest.(check int) "redialed slot serves clean" 1 r3.Peer.epochs;
  match Loopback.chaos_events c 1 with
  | [ { Fault.event_action = Fault.Truncate _; _ } ] -> ()
  | es -> Alcotest.failf "expected exactly one proxy event, got %d" (List.length es)

let test_net_metrics_counted () =
  Obs.Metrics.reset ();
  Obs.Metrics.set_recording true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_recording false) @@ fun () ->
  Loopback.with_cluster ~params:fast ~spec:small_spec @@ fun c ->
  let response = Loopback.query c ~scheme:"plain" () in
  let _ = served_exn "plain" response.Peer.result in
  Alcotest.(check bool) "frames out counted" true
    (Obs.Metrics.counter_value (Obs.Metrics.counter "net.frames.out") > 0);
  Alcotest.(check bool) "frames in counted" true
    (Obs.Metrics.counter_value (Obs.Metrics.counter "net.frames.in") > 0);
  Alcotest.(check bool) "payload bytes counted" true
    (Obs.Metrics.counter_value (Obs.Metrics.counter "net.payload.in") > 0)

(* ------------------------------------------------------------------ *)
(* Regression: run_session must scope the plan's delay handler. *)

let test_delay_handler_scoped_to_session () =
  let env, client, query = Workload.scenario ~params:fast small_spec in
  let plan = chaos_rule ~times:1 (Fault.Delay 0.01) in
  Alcotest.(check bool) "no handler before" false (Fault.delay_handler_installed plan);
  let result =
    Protocol.run_session ~fault:plan ~chain:[]
      ~session:(R.session ~policy:{ R.default_policy with R.deadline_budget = Some 30. } ())
      (Option.get (Protocol.scheme_of_name "plain"))
      env client ~query
  in
  (match result with
  | Protocol.Served _ -> ()
  | Protocol.Unserved tried ->
    Alcotest.failf "plain with a tiny delay must serve: %a" Protocol.pp_session_failures tried);
  Alcotest.(check bool) "no handler leaked after" false (Fault.delay_handler_installed plan);
  (* And a caller's own handler is restored, not clobbered. *)
  let outer_ran = ref false in
  Fault.with_delay_handler plan (Some (fun _ -> outer_ran := true)) (fun () ->
      (match
         Protocol.run_session ~fault:plan ~chain:[]
           (Option.get (Protocol.scheme_of_name "plain"))
           env client ~query
       with
      | Protocol.Served _ -> ()
      | Protocol.Unserved _ -> Alcotest.fail "plain must serve");
      Alcotest.(check bool) "outer handler restored inside scope" true
        (Fault.delay_handler_installed plan));
  Alcotest.(check bool) "outer handler unwound" false (Fault.delay_handler_installed plan)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "net"
    [
      ( "wire-stream",
        [
          Alcotest.test_case "split at every offset" `Quick test_stream_split_at_every_offset;
          Alcotest.test_case "byte by byte" `Quick test_stream_byte_by_byte;
          Alcotest.test_case "incomplete frame waits" `Quick test_stream_incomplete_frame_waits;
          Alcotest.test_case "oversized frame rejected" `Quick
            test_stream_oversized_frame_rejected;
        ] );
      ( "frame-codec",
        [
          Alcotest.test_case "roundtrip all frames" `Quick test_frame_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_frame_rejects_garbage;
          Alcotest.test_case "deadline precision" `Quick test_frame_deadline_precision;
        ] );
      ( "mux",
        [
          Alcotest.test_case "parks pre-subscription frames" `Quick
            test_mux_parks_frames_before_subscription;
          Alcotest.test_case "drops closed-session frames" `Quick
            test_mux_drops_frames_of_closed_sessions;
          Alcotest.test_case "tombstone drops counted" `Quick
            test_mux_tombstone_drops_counted;
          Alcotest.test_case "tombstones bounded with FIFO eviction" `Quick
            test_mux_tombstones_bounded;
          Alcotest.test_case "subscribe resurrects tombstoned id" `Quick
            test_mux_subscribe_resurrects_tombstoned_id;
          Alcotest.test_case "concurrent sessions never cross-deliver" `Quick
            test_mux_concurrent_sessions_stress;
        ] );
      ( "scenario",
        [ Alcotest.test_case "digest deterministic" `Quick test_scenario_digest_deterministic ] );
      ( "loopback",
        [
          Alcotest.test_case "differential: all schemes bit-identical" `Slow
            test_loopback_differential;
          Alcotest.test_case "at capacity refuses" `Quick test_server_at_capacity_refuses;
          Alcotest.test_case "digest mismatch refused" `Quick
            test_scenario_digest_mismatch_refused;
          Alcotest.test_case "completed session frees its slot" `Slow
            test_admission_slot_freed_after_completion;
          Alcotest.test_case "pooled connection sever isolated" `Slow
            test_pooled_connection_sever_isolated;
          Alcotest.test_case "net metrics counted" `Quick test_net_metrics_counted;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "corrupt retried then served" `Slow
            test_chaos_corrupt_retried_then_served;
          Alcotest.test_case "drop is a typed timeout fault" `Slow
            test_chaos_drop_is_typed_timeout_fault;
          Alcotest.test_case "duplicate filtered" `Slow test_chaos_duplicate_is_filtered;
          Alcotest.test_case "delay trips the real deadline" `Slow
            test_chaos_delay_trips_real_deadline;
          Alcotest.test_case "truncate severed then redialed" `Slow
            test_chaos_truncate_severs_then_redials;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "delay handler scoped" `Quick test_delay_handler_scoped_to_session;
        ] );
    ]

(* Tests of the telemetry subsystem: monotonic clock, hand-rolled JSON,
   span tracer, metrics registry, exporters — and the differential
   guarantees the rest of the stack relies on: per-(party, phase) crypto
   attribution sums to the global counters for every scheme, and the
   trace of a PM run covers (almost) all of its measured wall time. *)

open Secmed_crypto
open Secmed_mediation
open Secmed_core
open Secmed_obs

let fast = { Env.group_bits = 160; paillier_bits = 384 }

let small_spec =
  {
    Workload.default with
    rows_left = 12;
    rows_right = 12;
    distinct_left = 6;
    distinct_right = 6;
    overlap = 3;
    extra_attrs = 1;
  }

let scenario () = Workload.scenario ~params:fast small_spec

(* ------------------------------------------------------------------ *)
(* Clock. *)

let test_clock_monotonic () =
  let previous = ref (Clock.now_ns ()) in
  for _ = 1 to 1000 do
    let now = Clock.now_ns () in
    if Int64.compare now !previous < 0 then Alcotest.fail "clock went backwards";
    previous := now
  done

let test_clock_elapsed () =
  let t0 = Clock.now_ns () in
  ignore (Sys.opaque_identity (List.init 1000 Fun.id));
  let e = Clock.elapsed_ns ~since:t0 in
  Alcotest.(check bool) "non-negative" true (Int64.compare e 0L >= 0);
  Alcotest.(check (float 1e-9)) "ns_to_s" 0.5 (Clock.ns_to_s 500_000_000L);
  Alcotest.(check (float 1e-9)) "ns_to_ms" 1.5 (Clock.ns_to_ms 1_500_000L)

(* ------------------------------------------------------------------ *)
(* Json. *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("str", Json.Str "quote \" backslash \\ newline \n tab \t unicode \x01");
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
      ]
  in
  (match Json.parse (Json.to_string v) with
   | Ok parsed -> Alcotest.(check bool) "compact roundtrip" true (parsed = v)
   | Error e -> Alcotest.failf "compact: %s" e);
  match Json.parse (Json.to_string_pretty v) with
  | Ok parsed -> Alcotest.(check bool) "pretty roundtrip" true (parsed = v)
  | Error e -> Alcotest.failf "pretty: %s" e

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "[1] trailing"; "{'a':1}" ]

let test_json_accessors () =
  match Json.parse {|{"a": [1, 2.5, "x"], "b": {"c": 7}}|} with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok v ->
    (match Json.member "a" v with
     | Some (Json.List [ x; y; z ]) ->
       Alcotest.(check (option int)) "int" (Some 1) (Json.to_int x);
       Alcotest.(check (option (float 1e-9))) "float" (Some 2.5) (Json.to_float y);
       Alcotest.(check (option string)) "str" (Some "x") (Json.to_str z)
     | _ -> Alcotest.fail "member a");
    (match Json.member "b" v with
     | Some b -> Alcotest.(check (option int)) "nested" (Some 7)
                   (Option.bind (Json.member "c" b) Json.to_int)
     | None -> Alcotest.fail "member b")

(* ------------------------------------------------------------------ *)
(* Metrics. *)

let test_metrics_counter_gauge () =
  Metrics.reset ();
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  let g = Metrics.gauge "test.gauge" in
  Metrics.set_gauge g 2.25;
  Alcotest.(check (float 1e-9)) "gauge" 2.25 (Metrics.gauge_value g);
  Alcotest.(check bool) "interned" true (c == Metrics.counter "test.counter");
  (try
     ignore (Metrics.histogram "test.counter");
     Alcotest.fail "kind clash accepted"
   with Invalid_argument _ -> ());
  Metrics.reset ();
  Alcotest.(check int) "reset" 0 (Metrics.counter_value c)

let test_metrics_histogram () =
  Metrics.reset ();
  let h = Metrics.histogram "test.hist" in
  for i = 1 to 1000 do
    Metrics.observe h (float_of_int i /. 1000.0)
  done;
  Alcotest.(check int) "count" 1000 (Metrics.histogram_count h);
  let p50, p90, p99 = Metrics.percentiles h in
  let within q lo hi = q >= lo && q <= hi in
  Alcotest.(check bool) "p50 in [0.35,0.7]" true (within p50 0.35 0.7);
  Alcotest.(check bool) "p90 in [0.7,1.0]" true (within p90 0.7 1.0);
  Alcotest.(check bool) "p99 in [0.8,1.0]" true (within p99 0.8 1.0);
  Alcotest.(check bool) "ordered" true (p50 <= p90 && p90 <= p99);
  (* Zero and negative observations land in the underflow bucket and
     never make a quantile negative-infinite. *)
  Metrics.observe h 0.0;
  Metrics.observe h (-1.0);
  let p50, _, _ = Metrics.percentiles h in
  Alcotest.(check bool) "underflow safe" true (Float.is_finite p50)

let test_metrics_singleton_quantile () =
  Metrics.reset ();
  let h = Metrics.histogram "test.single" in
  Metrics.observe h 3.0;
  let p50, p90, p99 = Metrics.percentiles h in
  List.iter
    (fun q -> Alcotest.(check (float 1e-9)) "clamped to the one sample" 3.0 q)
    [ p50; p90; p99 ]

(* The loadgen recipe: each concurrent recorder observes into its own
   private histogram, merged after the join.  Because merge adds whole
   buckets, the merged quantiles must equal those of one histogram that
   observed every sample itself — bit-for-bit, not approximately. *)
let test_histogram_merge_concurrent_recorders () =
  let recorders = 4 and samples_each = 2500 in
  let sample r i = float_of_int ((r * samples_each) + i + 1) /. 1000. in
  let privates = Array.init recorders (fun _ -> Metrics.private_histogram ()) in
  let domains =
    List.init recorders (fun r ->
        Domain.spawn (fun () ->
            for i = 0 to samples_each - 1 do
              Metrics.observe privates.(r) (sample r i)
            done))
  in
  List.iter Domain.join domains;
  let merged = Metrics.private_histogram () in
  Array.iter (fun h -> Metrics.merge_into ~into:merged h) privates;
  let reference = Metrics.private_histogram () in
  for r = 0 to recorders - 1 do
    for i = 0 to samples_each - 1 do
      Metrics.observe reference (sample r i)
    done
  done;
  Alcotest.(check int) "no sample lost" (recorders * samples_each)
    (Metrics.histogram_count merged);
  Alcotest.(check (float 1e-9)) "sums equal"
    (Metrics.histogram_sum reference) (Metrics.histogram_sum merged);
  Alcotest.(check (float 1e-9)) "min equal"
    (Metrics.histogram_min reference) (Metrics.histogram_min merged);
  Alcotest.(check (float 1e-9)) "max equal"
    (Metrics.histogram_max reference) (Metrics.histogram_max merged);
  List.iter
    (fun q ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "q=%.2f identical to single-threaded" q)
        (Metrics.quantile reference q) (Metrics.quantile merged q))
    [ 0.01; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1.0 ];
  (* The sources survive the merge unchanged. *)
  Alcotest.(check int) "source histogram intact" samples_each
    (Metrics.histogram_count privates.(0))

(* ------------------------------------------------------------------ *)
(* Trace. *)

let test_trace_disabled_is_passthrough () =
  Trace.uninstall ();
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  Alcotest.(check int) "value passes" 41 (Trace.with_span "noop" (fun () -> 41));
  Trace.add_attr "ignored" Json.Null;
  Trace.event "ignored"

let test_trace_nesting () =
  let (), t =
    Trace.collect (fun () ->
        Trace.with_span ~kind:Trace.Protocol "root" (fun () ->
            Trace.with_span ~kind:Trace.Phase "child" (fun () ->
                Trace.add_attr "k" (Json.Int 1);
                Trace.event "hello" ~attrs:[ ("n", Json.Int 2) ]);
            Trace.with_span "second" (fun () -> ())))
  in
  match Trace.spans t with
  | [ root; child; second ] ->
    Alcotest.(check (option int)) "root is a root" None root.Trace.parent;
    Alcotest.(check (option int)) "child of root" (Some root.Trace.id) child.Trace.parent;
    Alcotest.(check (option int)) "second too" (Some root.Trace.id) second.Trace.parent;
    Alcotest.(check bool) "attr" true (Trace.find_attr child "k" = Some (Json.Int 1));
    (match Trace.events t with
     | [ e ] ->
       Alcotest.(check string) "event name" "hello" e.Trace.ev_name;
       Alcotest.(check (option int)) "anchored" (Some child.Trace.id) e.Trace.ev_span
     | events -> Alcotest.failf "expected 1 event, got %d" (List.length events));
    Alcotest.(check (list int)) "roots" [ root.Trace.id ]
      (List.map (fun s -> s.Trace.id) (Trace.roots t));
    Alcotest.(check (list int)) "children" [ child.Trace.id; second.Trace.id ]
      (List.map (fun s -> s.Trace.id) (Trace.children t root))
  | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans)

exception Boom

let test_trace_exception_safety () =
  let result =
    Trace.collect (fun () ->
        try Trace.with_span "outer" (fun () ->
              Trace.with_span "inner" (fun () -> raise Boom))
        with Boom -> ())
  in
  let (), t = result in
  Alcotest.(check int) "both spans closed" 2 (List.length (Trace.spans t));
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Trace.name ^ " has a stop time") true
        (Int64.compare s.Trace.stop_ns s.Trace.start_ns >= 0))
    (Trace.spans t);
  (* The stack recovered: a new span after the exception is a root. *)
  Alcotest.(check bool) "not enabled outside collect" false (Trace.enabled ())

let test_trace_collect_restores () =
  let outer = Trace.create () in
  Trace.install outer;
  let (), _inner = Trace.collect (fun () -> Trace.with_span "in" (fun () -> ())) in
  Alcotest.(check bool) "outer sink back" true (Trace.enabled ());
  Trace.with_span "after" (fun () -> ());
  Trace.uninstall ();
  Alcotest.(check int) "outer got only its own span" 1 (List.length (Trace.spans outer))

(* One installed collector hammered from 8 systhreads: ids stay unique,
   every child's parent is its own thread's outer span (the per-thread
   stacks never bleed into each other), and every span closes. *)
let test_trace_concurrent_threads () =
  let c = Trace.create () in
  Trace.install c;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      let threads =
        List.init 8 (fun w ->
            Thread.create
              (fun () ->
                for i = 1 to 25 do
                  Trace.with_span ~kind:Trace.Phase
                    ~attrs:[ ("worker", Json.Int w) ] "outer" (fun () ->
                      Trace.with_span "inner" (fun () ->
                          if i mod 5 = 0 then Trace.event "tick"))
                done)
              ())
      in
      List.iter Thread.join threads);
  let spans = Trace.spans c in
  Alcotest.(check int) "all spans recorded" (8 * 25 * 2) (List.length spans);
  let ids = List.map (fun s -> s.Trace.id) spans in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  let by_id = Hashtbl.create 512 in
  List.iter (fun s -> Hashtbl.replace by_id s.Trace.id s) spans;
  List.iter
    (fun s ->
      Alcotest.(check bool) "stop after start" true
        (Int64.compare s.Trace.stop_ns s.Trace.start_ns >= 0);
      match s.Trace.parent with
      | None -> Alcotest.(check string) "roots are outer spans" "outer" s.Trace.name
      | Some p -> (
        Alcotest.(check string) "only inner spans have parents" "inner" s.Trace.name;
        match Hashtbl.find_opt by_id p with
        | None -> Alcotest.failf "span %d has unknown parent %d" s.Trace.id p
        | Some parent ->
          Alcotest.(check string) "inner under an outer" "outer" parent.Trace.name;
          Alcotest.(check bool) "same worker as its parent" true
            (Trace.find_attr parent "worker" <> None)))
    spans

(* [with_collector] shadows the global sink for the binding thread only:
   concurrent threads keep writing to the installed collector. *)
let test_trace_with_collector_isolation () =
  let global = Trace.create () and bound = Trace.create () in
  Trace.install global;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      let t =
        Thread.create
          (fun () ->
            Trace.with_collector bound (fun () ->
                Trace.with_span "bound" (fun () -> Thread.delay 0.005)))
          ()
      in
      Trace.with_span "global" (fun () -> ());
      Thread.join t);
  Alcotest.(check (list string)) "global sink" [ "global" ]
    (List.map (fun s -> s.Trace.name) (Trace.spans global));
  Alcotest.(check (list string)) "bound sink" [ "bound" ]
    (List.map (fun s -> s.Trace.name) (Trace.spans bound))

(* ------------------------------------------------------------------ *)
(* Exporters. *)

let sample_trace () =
  let (), t =
    Trace.collect (fun () ->
        Trace.with_span ~kind:Trace.Protocol "proto" (fun () ->
            Trace.with_span ~kind:Trace.Phase
              ~attrs:[ ("party", Json.Str "Client") ] "phase-a" (fun () ->
                Trace.event "message" ~attrs:[ ("bytes", Json.Int 7) ])))
  in
  t

let test_export_chrome_parses () =
  let t = sample_trace () in
  match Json.parse (Export.chrome_json t) with
  | Error e -> Alcotest.failf "chrome trace does not parse: %s" e
  | Ok (Json.List entries) ->
    let phs =
      List.filter_map (fun e -> Option.bind (Json.member "ph" e) Json.to_str) entries
    in
    Alcotest.(check bool) "has complete events" true (List.mem "X" phs);
    Alcotest.(check bool) "has metadata events" true (List.mem "M" phs);
    Alcotest.(check bool) "has instant events" true (List.mem "i" phs);
    List.iter
      (fun e ->
        if Option.bind (Json.member "ph" e) Json.to_str = Some "X" then begin
          Alcotest.(check bool) "ts present" true (Json.member "ts" e <> None);
          Alcotest.(check bool) "dur present" true (Json.member "dur" e <> None)
        end)
      entries
  | Ok _ -> Alcotest.fail "chrome trace is not a JSON array"

let test_export_jsonl_parses () =
  let t = sample_trace () in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' (Export.jsonl t))
  in
  Alcotest.(check int) "header + 2 spans + 1 event" 4 (List.length lines);
  let types =
    List.map
      (fun line ->
        match Json.parse line with
        | Error e -> Alcotest.failf "line does not parse: %s (%s)" line e
        | Ok v ->
          (match Option.bind (Json.member "type" v) Json.to_str with
           | Some ty -> ty
           | None -> Alcotest.failf "line without type: %s" line))
      lines
  in
  Alcotest.(check (list string)) "line types" [ "clock"; "span"; "span"; "event" ] types

let test_export_format_of_path () =
  Alcotest.(check bool) "jsonl" true (Export.format_of_path "t.jsonl" = `Jsonl);
  Alcotest.(check bool) "chrome" true (Export.format_of_path "t.json" = `Chrome)

(* The single-trace export is the one-process special case of the
   multi-process export, byte for byte — the guarantee that lets the
   distributed path share the in-process renderer. *)
let test_export_processes_byte_identity () =
  let t = sample_trace () in
  Alcotest.(check string) "single-process flavours agree" (Export.chrome_json t)
    (Export.chrome_json_processes [ Export.process_of_trace t ])

(* Multi-process Chrome export: deterministic pid/tid lanes, named
   process metadata, and no dangling lane for an empty span batch. *)
let test_export_process_lanes () =
  let t1 = sample_trace () in
  let (), t2 =
    Trace.collect (fun () ->
        Trace.with_span ~kind:Trace.Phase
          ~attrs:[ ("party", Json.Str "Source 1") ] "phase-b" (fun () -> ()))
  in
  let processes =
    [
      Export.process_of_trace ~pid:1 ~name:"client" t1;
      (* A participant that shipped an empty batch must not leave a lane. *)
      Export.process_of_trace ~pid:2 ~name:"mediator" (Trace.create ());
      Export.process_of_trace ~pid:3 ~name:"source-1" t2;
    ]
  in
  match Json.parse (Export.chrome_json_processes processes) with
  | Error e -> Alcotest.failf "merged trace does not parse: %s" e
  | Ok (Json.List entries) ->
    let pid_of e =
      match Json.member "pid" e with Some (Json.Int p) -> Some p | _ -> None
    in
    Alcotest.(check (list int)) "empty process omitted" [ 1; 3 ]
      (List.sort_uniq compare (List.filter_map pid_of entries));
    let process_names =
      List.filter_map
        (fun e ->
          if
            Json.member "ph" e = Some (Json.Str "M")
            && Json.member "name" e = Some (Json.Str "process_name")
          then
            match (pid_of e, Json.member "args" e) with
            | Some pid, Some args ->
              Option.map (fun n -> (pid, n)) (Option.bind (Json.member "name" args) Json.to_str)
            | _ -> None
          else None)
        entries
    in
    Alcotest.(check bool) "process names" true
      (process_names = [ (1, "client"); (3, "source-1") ]);
    let span_lane name =
      List.find_map
        (fun e ->
          if
            Json.member "ph" e = Some (Json.Str "X")
            && Json.member "name" e = Some (Json.Str name)
          then
            match (pid_of e, Json.member "tid" e) with
            | Some pid, Some (Json.Int tid) -> Some (pid, tid)
            | _ -> None
          else None)
        entries
    in
    (* tids are per process in order of first appearance, "run" = 0. *)
    Alcotest.(check (option (pair int int))) "root on run lane" (Some (1, 0))
      (span_lane "proto");
    Alcotest.(check (option (pair int int))) "client party lane" (Some (1, 1))
      (span_lane "phase-a");
    Alcotest.(check (option (pair int int))) "source party lane" (Some (3, 1))
      (span_lane "phase-b")
  | Ok _ -> Alcotest.fail "merged trace is not a JSON array"

(* Span nesting survives the JSONL round trip: parse every line back and
   re-link children to parents by id. *)
let test_export_jsonl_processes_roundtrip () =
  let t = sample_trace () in
  let out = Export.jsonl_processes [ Export.process_of_trace ~pid:7 ~name:"client" t ] in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' out)
  in
  let parsed =
    List.map
      (fun line ->
        match Json.parse line with
        | Ok v -> v
        | Error e -> Alcotest.failf "line does not parse: %s (%s)" line e)
      lines
  in
  let type_of v = Option.bind (Json.member "type" v) Json.to_str in
  Alcotest.(check (list string)) "line types"
    [ "clock"; "process"; "span"; "span"; "event" ]
    (List.filter_map type_of parsed);
  let spans = List.filter (fun v -> type_of v = Some "span") parsed in
  (match spans with
   | [ root; child ] ->
     Alcotest.(check bool) "root has no parent" true
       (Json.member "parent" root = Some Json.Null);
     Alcotest.(check bool) "child links to root" true
       (Json.member "parent" child = Json.member "id" root
        && Json.member "id" root <> None);
     List.iter
       (fun v ->
         Alcotest.(check bool) "carries the pid" true
           (Json.member "pid" v = Some (Json.Int 7)))
       spans
   | _ -> Alcotest.fail "expected exactly two span lines")

(* ------------------------------------------------------------------ *)
(* Counters: scoped attribution. *)

let test_counters_scoped_nesting () =
  let (), _counts =
    Counters.with_fresh (fun () ->
        Counters.bump Counters.Hash;
        Counters.scoped ~party:"A" ~phase:"p" (fun () ->
            Counters.bump Counters.Hash;
            Counters.bump Counters.Hash;
            Counters.scoped ~party:"B" ~phase:"q" (fun () ->
                Counters.bump Counters.Random_number));
        let attr = Counters.attribution () in
        let find key = List.assoc_opt key attr in
        let count key p =
          match find key with Some counts -> List.assoc p counts | None -> -1
        in
        Alcotest.(check int) "outside any scope" 1 (count ("unattributed", "") Counters.Hash);
        Alcotest.(check int) "A/p hashes" 2 (count ("A", "p") Counters.Hash);
        Alcotest.(check int) "A/p did not absorb B/q" 0 (count ("A", "p") Counters.Random_number);
        Alcotest.(check int) "B/q randoms" 1 (count ("B", "q") Counters.Random_number);
        (* The invariant: attribution sums to the global snapshot. *)
        List.iter
          (fun (p, total) ->
            let attributed =
              List.fold_left
                (fun acc (_, counts) -> acc + List.assoc p counts)
                0 attr
            in
            Alcotest.(check int) ("sum " ^ Counters.name p) total attributed)
          (Counters.snapshot ()))
  in
  ()

let test_counters_scoped_exception () =
  let (), _ =
    Counters.with_fresh (fun () ->
        (try
           Counters.scoped ~party:"A" ~phase:"p" (fun () ->
               Counters.bump Counters.Hash;
               raise Boom)
         with Boom -> ());
        Counters.bump Counters.Ideal_hash;
        let attr = Counters.attribution () in
        Alcotest.(check int) "scope closed on exception" 1
          (List.assoc Counters.Hash (List.assoc ("A", "p") attr));
        Alcotest.(check int) "later bumps fall outside" 1
          (List.assoc Counters.Ideal_hash (List.assoc ("unattributed", "") attr)))
  in
  ()

(* The documented non-reentrancy of with_fresh: an inner with_fresh's
   counts vanish from the outer accounting (its restore puts back the
   outer partial counts).  This pins the behaviour the mli documents and
   steers nesting use-cases toward Counters.scoped. *)
let test_with_fresh_not_reentrant () =
  let (), outer_counts =
    Counters.with_fresh (fun () ->
        Counters.bump Counters.Hash;
        let (), inner_counts =
          Counters.with_fresh (fun () -> Counters.bump Counters.Hash)
        in
        Alcotest.(check int) "inner sees only its own" 1
          (List.assoc Counters.Hash inner_counts))
  in
  Alcotest.(check int) "outer lost the inner bump" 1
    (List.assoc Counters.Hash outer_counts)

(* ------------------------------------------------------------------ *)
(* Differential: for every scheme, the per-(party, phase) attribution in
   the outcome sums to the global counter snapshot of the run. *)

let test_attribution_sums_per_scheme () =
  let env, client, query = scenario () in
  List.iter
    (fun scheme ->
      let outcome = Protocol.run_exn scheme env client ~query in
      List.iter
        (fun (p, total) ->
          let attributed =
            List.fold_left
              (fun acc ((_, _), counts) -> acc + List.assoc p counts)
              0 outcome.Outcome.attributed
          in
          Alcotest.(check int)
            (Printf.sprintf "%s: %s" (Protocol.scheme_name scheme) (Counters.name p))
            total attributed)
        outcome.Outcome.counters;
      (* Every phase with attributed crypto work is party-labelled: the
         drivers never let counts fall into the unattributed bucket. *)
      List.iter
        (fun ((party, phase), _) ->
          if String.equal party "unattributed" then
            Alcotest.failf "%s: unattributed crypto ops in phase %S"
              (Protocol.scheme_name scheme) phase)
        outcome.Outcome.attributed)
    Protocol.all_schemes

(* ------------------------------------------------------------------ *)
(* End-to-end tracing: a traced PM run produces a protocol root span
   whose children cover at least 95% of its duration, with crypto ops
   attached to party-labelled phase spans. *)

let test_pm_trace_coverage () =
  let env, client, query = scenario () in
  let outcome, t =
    Trace.collect (fun () ->
        Protocol.run_exn (Protocol.Private_matching Pm_join.Session_keys) env client ~query)
  in
  Alcotest.(check bool) "run correct" true (Outcome.correct outcome);
  match Trace.roots t with
  | [ root ] ->
    Alcotest.(check bool) "root is the protocol span" true
      (root.Trace.kind = Trace.Protocol);
    let coverage = Trace.coverage t root in
    if coverage < 0.95 then
      Alcotest.failf "span coverage %.1f%% below 95%%" (coverage *. 100.0);
    (* Crypto ops surfaced as span attributes on party-labelled phases. *)
    let has_ops =
      List.exists
        (fun s ->
          s.Trace.kind = Trace.Phase
          && Trace.find_attr s "party" <> None
          && List.exists
               (fun (k, _) -> String.length k > 4 && String.sub k 0 4 = "ops.")
               (Trace.attrs s))
        (Trace.spans t)
    in
    Alcotest.(check bool) "ops.* attributes present" true has_ops;
    (* The transcript's messages surfaced as instant events. *)
    let n_messages = Transcript.message_count outcome.Outcome.transcript in
    let n_events =
      List.length
        (List.filter (fun e -> e.Trace.ev_name = "message") (Trace.events t))
    in
    Alcotest.(check int) "one event per message" n_messages n_events
  | roots -> Alcotest.failf "expected 1 root span, got %d" (List.length roots)

(* A faulted run emits fault events into the trace. *)
let test_fault_events_in_trace () =
  let env, client, query = scenario () in
  let plan =
    match Fault.of_spec "drop:mediator->client:*:times=1;retries=0" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let result, t =
    Trace.collect (fun () ->
        Protocol.run (Protocol.Private_matching Pm_join.Session_keys) ~fault:plan env client
          ~query)
  in
  (match result with
   | Protocol.Fault _ -> ()
   | Protocol.Ok _ -> Alcotest.fail "expected the drop to fault the run");
  Alcotest.(check bool) "fault event present" true
    (List.exists (fun e -> e.Trace.ev_name = "fault") (Trace.events t))

(* ------------------------------------------------------------------ *)
(* Transcript running totals: the incremental counters match a from-
   scratch recomputation over the message list. *)

let test_transcript_running_totals () =
  let tr = Transcript.create () in
  Alcotest.(check int) "empty count" 0 (Transcript.message_count tr);
  Alcotest.(check int) "empty bytes" 0 (Transcript.total_bytes tr);
  let prng = Prng.of_int_seed 11 in
  let parties = [| Transcript.Client; Transcript.Mediator; Transcript.Source 1 |] in
  for i = 0 to 99 do
    let sender = parties.(Prng.uniform_int prng 3) in
    let receiver = parties.(Prng.uniform_int prng 3) in
    Transcript.record tr ~sender ~receiver ~label:(Printf.sprintf "m%d" i)
      ~size:(Prng.uniform_int prng 5000)
  done;
  let messages = Transcript.messages tr in
  Alcotest.(check int) "count matches list" (List.length messages)
    (Transcript.message_count tr);
  Alcotest.(check int) "bytes match fold"
    (List.fold_left (fun acc m -> acc + m.Transcript.size) 0 messages)
    (Transcript.total_bytes tr)

(* ------------------------------------------------------------------ *)
(* Report. *)

let test_report_of_trace () =
  let env, client, query = scenario () in
  let _outcome, t =
    Trace.collect (fun () ->
        Protocol.run_exn (Protocol.Private_matching Pm_join.Session_keys) env client ~query)
  in
  let rendered = Report.of_trace t in
  List.iter
    (fun needle ->
      if
        not
          (List.exists
             (fun line ->
               String.length line >= String.length needle
               &&
               let rec scan i =
                 i + String.length needle <= String.length line
                 && (String.sub line i (String.length needle) = needle || scan (i + 1))
               in
               scan 0)
             (String.split_on_char '\n' rendered))
      then Alcotest.failf "report lacks %S:\n%s" needle rendered)
    [ "party"; "Client"; "Source1"; "client-postprocess"; "total" ]

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [
          Alcotest.test_case "monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "elapsed" `Quick test_clock_elapsed;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter and gauge" `Quick test_metrics_counter_gauge;
          Alcotest.test_case "histogram percentiles" `Quick test_metrics_histogram;
          Alcotest.test_case "singleton quantile" `Quick test_metrics_singleton_quantile;
          Alcotest.test_case "merge under concurrent recorders" `Quick
            test_histogram_merge_concurrent_recorders;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled passthrough" `Quick test_trace_disabled_is_passthrough;
          Alcotest.test_case "nesting" `Quick test_trace_nesting;
          Alcotest.test_case "exception safety" `Quick test_trace_exception_safety;
          Alcotest.test_case "collect restores" `Quick test_trace_collect_restores;
          Alcotest.test_case "concurrent threads" `Quick test_trace_concurrent_threads;
          Alcotest.test_case "with_collector isolation" `Quick
            test_trace_with_collector_isolation;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome parses" `Quick test_export_chrome_parses;
          Alcotest.test_case "jsonl parses" `Quick test_export_jsonl_parses;
          Alcotest.test_case "format of path" `Quick test_export_format_of_path;
          Alcotest.test_case "processes byte identity" `Quick
            test_export_processes_byte_identity;
          Alcotest.test_case "process lanes" `Quick test_export_process_lanes;
          Alcotest.test_case "jsonl processes roundtrip" `Quick
            test_export_jsonl_processes_roundtrip;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "scoped nesting" `Quick test_counters_scoped_nesting;
          Alcotest.test_case "scoped exception" `Quick test_counters_scoped_exception;
          Alcotest.test_case "with_fresh not reentrant" `Quick test_with_fresh_not_reentrant;
          Alcotest.test_case "sums per scheme" `Slow test_attribution_sums_per_scheme;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "pm trace coverage" `Slow test_pm_trace_coverage;
          Alcotest.test_case "fault events" `Slow test_fault_events_in_trace;
          Alcotest.test_case "transcript totals" `Quick test_transcript_running_totals;
          Alcotest.test_case "report" `Slow test_report_of_trace;
        ] );
    ]

(* Resilience-layer suite (DESIGN.md §10): deadline budgets, seeded
   exponential backoff, per-datasource circuit breakers, and graceful
   scheme degradation.  Everything is deterministic — jitter is seeded
   and every clock is a manual clock, so nothing here ever sleeps. *)

open Secmed_mediation
open Secmed_core
module R = Resilience

let fast = { Env.group_bits = 160; paillier_bits = 384 }

let small_spec =
  {
    Workload.default with
    rows_left = 10;
    rows_right = 10;
    distinct_left = 5;
    distinct_right = 5;
    overlap = 3;
    extra_attrs = 1;
  }

let shared = lazy (Workload.scenario ~params:fast small_spec)

let pm = Protocol.Private_matching Pm_join.Session_keys

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let feps = Alcotest.float 1e-9

(* ------------------------------------------------------------------ *)
(* Backoff. *)

let test_backoff_exact_without_jitter () =
  let b = R.backoff ~base:0.1 ~factor:2.0 ~max_delay:0.4 ~jitter:0.0 () in
  Alcotest.(check (list feps))
    "doubling capped at max_delay"
    [ 0.1; 0.2; 0.4; 0.4; 0.4 ]
    (R.backoff_schedule b ~attempts:5);
  Alcotest.(check (list feps))
    "no_backoff is all zeros" [ 0.0; 0.0; 0.0 ]
    (R.backoff_schedule R.no_backoff ~attempts:3)

let test_backoff_jitter_deterministic () =
  let schedule seed =
    R.backoff_schedule (R.backoff ~base:0.1 ~jitter:0.2 ~seed ()) ~attempts:6
  in
  Alcotest.(check (list feps)) "same seed, same schedule" (schedule 7) (schedule 7);
  Alcotest.(check bool)
    "different seed, different schedule" true
    (schedule 7 <> schedule 8);
  (* Jitter stays within the documented envelope around the raw delay. *)
  let b = R.backoff ~base:0.1 ~factor:2.0 ~max_delay:10.0 ~jitter:0.2 ~seed:3 () in
  List.iteri
    (fun i d ->
      let raw = 0.1 *. (2.0 ** float_of_int i) in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d within [0.8, 1.2] x raw" (i + 1))
        true
        (d >= (0.8 *. raw) -. 1e-9 && d <= (1.2 *. raw) +. 1e-9))
    (R.backoff_schedule b ~attempts:5)

(* ------------------------------------------------------------------ *)
(* Deadlines. *)

let test_deadline_accounting () =
  let clock, advance = R.manual () in
  let d = R.deadline clock ~budget:1.0 in
  advance 0.4;
  Alcotest.(check feps) "elapsed" 0.4 (R.elapsed d);
  Alcotest.(check feps) "remaining" 0.6 (R.remaining d);
  Alcotest.(check feps) "half the remaining budget" 0.3 (R.phase_budget d ~fraction:0.5);
  R.charge d ~phase:"x" 0.3;
  Alcotest.(check feps) "charge counts as elapsed" 0.7 (R.elapsed d);
  Alcotest.(check bool) "not yet expired" false (R.expired d);
  advance 0.4;
  Alcotest.(check bool) "expired" true (R.expired d);
  Alcotest.(check feps) "remaining clamps at zero" 0.0 (R.remaining d);
  (match R.check d ~phase:"p" with
   | () -> Alcotest.fail "expired deadline did not trip"
   | exception R.Deadline_exceeded { phase; elapsed; budget } ->
     Alcotest.(check string) "phase" "p" phase;
     Alcotest.(check feps) "elapsed at trip" 1.1 elapsed;
     Alcotest.(check feps) "budget at trip" 1.0 budget);
  (* charge past the line also trips, from the charging site. *)
  let d2 = R.deadline clock ~budget:0.5 in
  (match R.charge d2 ~phase:"link-delay" 0.6 with
   | () -> Alcotest.fail "overcharge did not trip"
   | exception R.Deadline_exceeded { phase; _ } ->
     Alcotest.(check string) "charge phase" "link-delay" phase);
  let u = R.unlimited clock in
  advance 1000.0;
  R.check u ~phase:"never";
  Alcotest.(check bool) "unlimited never expires" false (R.expired u)

(* ------------------------------------------------------------------ *)
(* Circuit breakers. *)

let tight_breaker =
  { R.window = 4; failure_threshold = 0.5; min_samples = 2; cooldown = 5.0;
    half_open_probes = 1 }

let states b = List.map (fun t -> t.R.to_state) (R.breaker_transitions b)

let test_breaker_lifecycle () =
  let clock, advance = R.manual () in
  let b = R.breaker ~config:tight_breaker clock (Transcript.Source 1) in
  Alcotest.(check bool) "closed admits" true (R.breaker_allow b);
  R.breaker_record b ~ok:false;
  Alcotest.(check bool) "one failure below min_samples" true (R.breaker_state b = R.Closed);
  R.breaker_record b ~ok:false;
  Alcotest.(check bool) "tripped open" true (R.breaker_state b = R.Open);
  Alcotest.(check bool) "open refuses" false (R.breaker_allow b);
  advance 4.9;
  Alcotest.(check bool) "still cooling down" false (R.breaker_allow b);
  advance 0.2;
  Alcotest.(check bool) "cooldown over: probe admitted" true (R.breaker_allow b);
  Alcotest.(check bool) "half-open" true (R.breaker_state b = R.Half_open);
  R.breaker_record b ~ok:true;
  Alcotest.(check bool) "probe success closes" true (R.breaker_state b = R.Closed);
  Alcotest.(check bool)
    "transition log" true
    (states b = [ R.Open; R.Half_open; R.Closed ]);
  (* The window was reset on close: it takes min_samples fresh failures
     to trip again. *)
  R.breaker_record b ~ok:false;
  Alcotest.(check bool) "window reset on close" true (R.breaker_state b = R.Closed)

let test_breaker_probe_failure_reopens () =
  let clock, advance = R.manual () in
  let b = R.breaker ~config:tight_breaker clock (Transcript.Source 2) in
  R.breaker_record b ~ok:false;
  R.breaker_record b ~ok:false;
  advance 5.0;
  Alcotest.(check bool) "probe admitted" true (R.breaker_allow b);
  R.breaker_record b ~ok:false;
  Alcotest.(check bool) "probe failure reopens" true (R.breaker_state b = R.Open);
  Alcotest.(check bool) "reopened refuses" false (R.breaker_allow b);
  Alcotest.(check bool)
    "transition log" true
    (states b = [ R.Open; R.Half_open; R.Open ])

let test_breaker_rate_threshold () =
  (* Failure *rate* over the sliding window, not a consecutive count:
     alternating outcomes at threshold 0.5 trip as soon as the window has
     min_samples. *)
  let clock, _ = R.manual () in
  let b =
    R.breaker
      ~config:{ tight_breaker with R.min_samples = 4; failure_threshold = 0.75 }
      clock (Transcript.Source 1)
  in
  List.iter (fun ok -> R.breaker_record b ~ok) [ false; true; true; false ];
  Alcotest.(check bool) "2/4 below 0.75 stays closed" true (R.breaker_state b = R.Closed);
  R.breaker_record b ~ok:false;
  (* the window slides: [true; true; false; false] is still only 0.5 *)
  Alcotest.(check bool) "sliding window still below" true (R.breaker_state b = R.Closed);
  R.breaker_record b ~ok:false;
  (* [true; false; false; false] = 0.75: the rate reaches the threshold *)
  Alcotest.(check bool) "rate reaches threshold" true (R.breaker_state b = R.Open)

(* ------------------------------------------------------------------ *)
(* The engine through Protocol.run: the factored retry path. *)

let test_retry_event_traced () =
  let env, client, query = Lazy.force shared in
  let plan = Fault.plan ~max_retries:2 [ Fault.rule ~times:1 Fault.Drop ] in
  let result, trace =
    Secmed_obs.Trace.collect (fun () ->
        Protocol.run ~fault:plan Protocol.Plain env client ~query)
  in
  (match result with
   | Protocol.Ok _ -> ()
   | Protocol.Fault f -> Alcotest.failf "unexpected fault: %s" f.Protocol.reason);
  let retries =
    List.filter (fun e -> e.Secmed_obs.Trace.ev_name = "retry") (Secmed_obs.Trace.events trace)
  in
  Alcotest.(check int) "one traced retry" 1 (List.length retries);
  let e = List.hd retries in
  Alcotest.(check bool)
    "retry event carries phase/reason/attempt" true
    (List.mem_assoc "phase" e.Secmed_obs.Trace.ev_attrs
     && List.mem_assoc "reason" e.Secmed_obs.Trace.ev_attrs
     && List.mem_assoc "attempt" e.Secmed_obs.Trace.ev_attrs)

(* ------------------------------------------------------------------ *)
(* Sessions: deadlines tripping on injected link delays. *)

let session_with ?deadline ?breaker ?backoff () =
  let clock, advance = R.manual () in
  let policy =
    {
      R.deadline_budget = deadline;
      retry_backoff = Option.value ~default:R.no_backoff backoff;
      breaker_config = Option.value ~default:R.default_breaker breaker;
    }
  in
  (R.session ~policy ~clock (), clock, advance)

let test_deadline_trips_on_delay_fault () =
  let env, client, query = Lazy.force shared in
  let session, _, _ = session_with ~deadline:0.1 () in
  let plan = Fault.plan ~max_retries:0 [ Fault.rule ~times:1 (Fault.Delay 0.5) ] in
  match Protocol.run_session ~fault:plan ~session ~chain:[] pm env client ~query with
  | Protocol.Served _ -> Alcotest.fail "delayed run beat a 0.1s budget"
  | Protocol.Unserved [ (scheme, f) ] ->
    Alcotest.(check string) "pm was tried" "pm[session-keys]" scheme;
    Alcotest.(check string) "typed deadline failure" "deadline" f.Protocol.phase;
    Alcotest.(check bool)
      "reason names the budget" true
      (contains f.Protocol.reason "deadline exceeded"
       && contains f.Protocol.reason "0.100");
    Alcotest.(check bool)
      "the injected delay was charged" true
      (Fault.simulated_delay plan >= 0.5)
  | Protocol.Unserved tried ->
    Alcotest.failf "expected one tried scheme, got %d" (List.length tried)

let test_deadline_handler_restored () =
  let env, client, query = Lazy.force shared in
  let session, _, _ = session_with ~deadline:0.1 () in
  let plan = Fault.plan ~max_retries:0 [ Fault.rule ~times:2 (Fault.Delay 0.5) ] in
  (match Protocol.run_session ~fault:plan ~session ~chain:[] pm env client ~query with
   | Protocol.Served _ -> Alcotest.fail "delayed run beat the budget"
   | Protocol.Unserved _ -> ());
  (* After run_session returns, the plan's delay handler is cleared: the
     remaining Delay firing is harmless again under plain Protocol.run. *)
  match Protocol.run ~fault:plan Protocol.Plain env client ~query with
  | Protocol.Ok _ -> ()
  | Protocol.Fault f -> Alcotest.failf "handler leaked across sessions: %s" f.Protocol.reason

let test_backoff_waits_on_session_clock () =
  let env, client, query = Lazy.force shared in
  let session, clock, _ =
    session_with ~backoff:(R.backoff ~base:0.5 ~factor:2.0 ~jitter:0.0 ()) ()
  in
  let plan = Fault.plan ~max_retries:2 [ Fault.rule ~times:1 Fault.Drop ] in
  (match Protocol.run_session ~fault:plan ~session ~chain:[] Protocol.Plain env client ~query with
   | Protocol.Served outcome ->
     Alcotest.(check bool) "served correctly" true (Outcome.correct outcome)
   | Protocol.Unserved _ -> Alcotest.fail "transient drop should recover");
  Alcotest.(check int) "two attempts" 2 (Fault.attempts plan);
  (* One retry, one backoff sleep of exactly base seconds on the virtual
     clock — nothing slept for real. *)
  Alcotest.(check feps) "virtual clock advanced by the backoff" 0.5 (clock.R.now ())

(* ------------------------------------------------------------------ *)
(* Graceful degradation. *)

let test_degradation_chain_serves_query () =
  let env, client, query = Lazy.force shared in
  let session, _, _ = session_with () in
  let plan = Fault.plan ~max_retries:2 ~byzantine:[ (1, Fault.Garbage_paillier) ] [] in
  match Protocol.run_session ~fault:plan ~session pm env client ~query with
  | Protocol.Unserved tried ->
    Alcotest.failf "chain exhausted: %s"
      (String.concat ", " (List.map fst tried))
  | Protocol.Served outcome ->
    Alcotest.(check (option string))
      "annotated with the scheme that gave up"
      (Some "pm[session-keys]") outcome.Outcome.degraded_from;
    Alcotest.(check bool)
      "fallback scheme served it" true
      (contains outcome.Outcome.scheme "commutative");
    Alcotest.(check bool)
      "join result equals ground truth" true (Outcome.correct outcome);
    Alcotest.(check bool)
      "trade recorded in the transcript" true
      (List.exists
         (fun n -> contains n.Transcript.text "degraded")
         (Transcript.notes outcome.Outcome.transcript))

let test_degradation_chain_exhausts () =
  let env, client, query = Lazy.force shared in
  let session, _, _ = session_with () in
  (* Drop everything: every scheme in the chain fails in the request
     phase and the session reports each terminal failure in order. *)
  let plan = Fault.plan ~max_retries:0 [ Fault.rule Fault.Drop ] in
  match Protocol.run_session ~fault:plan ~session pm env client ~query with
  | Protocol.Served _ -> Alcotest.fail "nothing can serve under drop-everything"
  | Protocol.Unserved tried ->
    Alcotest.(check (list string))
      "every chain entry tried, in order"
      [ "pm[session-keys]"; "commutative"; "das[equi-depth(4)]" ]
      (List.map fst tried);
    List.iter
      (fun (scheme, f) ->
        Alcotest.(check int) (scheme ^ ": one attempt, no retries") 1 f.Protocol.attempts)
      tried

let test_no_fault_no_degradation () =
  let env, client, query = Lazy.force shared in
  let session, _, _ = session_with ~deadline:60.0 () in
  match Protocol.run_session ~session pm env client ~query with
  | Protocol.Served outcome ->
    Alcotest.(check (option string)) "not degraded" None outcome.Outcome.degraded_from;
    Alcotest.(check bool) "correct" true (Outcome.correct outcome)
  | Protocol.Unserved _ -> Alcotest.fail "honest run must serve"

(* ------------------------------------------------------------------ *)
(* Breakers across a long-lived session. *)

let test_breaker_opens_across_queries () =
  let env, client, query = Lazy.force shared in
  let session, _, advance =
    session_with
      ~breaker:{ tight_breaker with R.cooldown = 50.0 }
      ()
  in
  let poisoned () = Fault.plan ~max_retries:0 ~byzantine:[ (1, Fault.Garbage_paillier) ] [] in
  let run ?fault () = Protocol.run_session ?fault ~session ~chain:[] pm env client ~query in
  (* Two queries against the byzantine source feed its breaker.  (The
     garbage Paillier value is detected by the *opposite* source while
     evaluating the poisoned polynomial, so the blame - and hence the
     breaker - lands on whichever source the fault layer charges.) *)
  let blamed =
    match run ~fault:(poisoned ()) () with
    | Protocol.Unserved [ (_, f) ] ->
      (match f.Protocol.party with
       | Transcript.Source _ as p -> p
       | p ->
         Alcotest.failf "blame must land on a datasource, got %s"
           (Transcript.party_name p))
    | _ -> Alcotest.fail "byzantine query 1 must fail"
  in
  (match run ~fault:(poisoned ()) () with
   | Protocol.Unserved _ -> ()
   | Protocol.Served _ -> Alcotest.fail "byzantine query 2 must fail");
  let b = R.breaker_for session blamed in
  Alcotest.(check bool) "breaker open after repeated faults" true (R.breaker_state b = R.Open);
  (* ... so the next query - even a clean one - is refused up front. *)
  (match run () with
   | Protocol.Served _ -> Alcotest.fail "open breaker must short-circuit"
   | Protocol.Unserved [ (_, f) ] ->
     Alcotest.(check string) "typed breaker failure" "breaker" f.Protocol.phase;
     Alcotest.(check bool) "names the tripped party" true (f.Protocol.party = blamed);
     Alcotest.(check int) "no attempt burned" 0 f.Protocol.attempts
   | Protocol.Unserved tried ->
     Alcotest.failf "expected one tried scheme, got %d" (List.length tried));
  (* After the cooldown the half-open probe goes through, and the (now
     honest) source closes the breaker again. *)
  advance 50.0;
  (match run () with
   | Protocol.Served outcome ->
     Alcotest.(check bool) "probe query served" true (Outcome.correct outcome)
   | Protocol.Unserved _ -> Alcotest.fail "probe query must serve");
  Alcotest.(check bool) "breaker closed by the probe" true (R.breaker_state b = R.Closed);
  Alcotest.(check bool)
    "full lifecycle logged" true
    (states b = [ R.Open; R.Half_open; R.Closed ])

(* ------------------------------------------------------------------ *)
(* Observability of the new machinery. *)

let test_resilience_metrics () =
  let env, client, query = Lazy.force shared in
  Secmed_obs.Metrics.reset ();
  Secmed_obs.Metrics.set_recording true;
  Fun.protect
    ~finally:(fun () ->
      Secmed_obs.Metrics.set_recording false;
      Secmed_obs.Metrics.reset ())
    (fun () ->
      let session, _, _ = session_with () in
      let plan = Fault.plan ~max_retries:2 ~byzantine:[ (1, Fault.Garbage_paillier) ] [] in
      (match Protocol.run_session ~fault:plan ~session pm env client ~query with
       | Protocol.Served _ -> ()
       | Protocol.Unserved _ -> Alcotest.fail "degradation should serve");
      Alcotest.(check int)
        "degradation counted" 1
        (Secmed_obs.Metrics.counter_value
           (Secmed_obs.Metrics.counter "resilience.degradations")))

let test_breaker_events_traced () =
  let clock, _ = R.manual () in
  let _, trace =
    Secmed_obs.Trace.collect (fun () ->
        Secmed_obs.Trace.with_span "root" (fun () ->
            let b = R.breaker ~config:tight_breaker clock (Transcript.Source 1) in
            R.breaker_record b ~ok:false;
            R.breaker_record b ~ok:false))
  in
  match
    List.filter (fun e -> e.Secmed_obs.Trace.ev_name = "breaker") (Secmed_obs.Trace.events trace)
  with
  | [ e ] ->
    Alcotest.(check bool)
      "transition event carries party/from/to" true
      (List.assoc_opt "party" e.Secmed_obs.Trace.ev_attrs
         = Some (Secmed_obs.Json.Str "Source1")
       && List.assoc_opt "to" e.Secmed_obs.Trace.ev_attrs
          = Some (Secmed_obs.Json.Str "open"))
  | events -> Alcotest.failf "expected one breaker event, got %d" (List.length events)

let () =
  Alcotest.run "resilience"
    [
      ( "backoff",
        [
          Alcotest.test_case "exact without jitter" `Quick test_backoff_exact_without_jitter;
          Alcotest.test_case "seeded jitter deterministic" `Quick
            test_backoff_jitter_deterministic;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "accounting and trips" `Quick test_deadline_accounting;
          Alcotest.test_case "delay fault trips budget" `Quick
            test_deadline_trips_on_delay_fault;
          Alcotest.test_case "delay handler restored" `Quick test_deadline_handler_restored;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "lifecycle" `Quick test_breaker_lifecycle;
          Alcotest.test_case "probe failure reopens" `Quick test_breaker_probe_failure_reopens;
          Alcotest.test_case "rate threshold" `Quick test_breaker_rate_threshold;
          Alcotest.test_case "opens across session queries" `Quick
            test_breaker_opens_across_queries;
        ] );
      ( "engine",
        [
          Alcotest.test_case "retry always traced" `Quick test_retry_event_traced;
          Alcotest.test_case "backoff on session clock" `Quick
            test_backoff_waits_on_session_clock;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "chain serves query" `Quick test_degradation_chain_serves_query;
          Alcotest.test_case "chain exhausts" `Quick test_degradation_chain_exhausts;
          Alcotest.test_case "honest run not degraded" `Quick test_no_fault_no_degradation;
        ] );
      ( "observability",
        [
          Alcotest.test_case "metrics counted" `Quick test_resilience_metrics;
          Alcotest.test_case "breaker transitions traced" `Quick test_breaker_events_traced;
        ] );
    ]

(* Sustained-load serving: the deterministic loadgen fleet against a
   forked loopback cluster, plus the domain-level concurrency pieces it
   rides on.

   Ordering note: the final suite spawns OCaml domains, and Unix.fork
   is illegal once any domain has been spawned — every cluster-forking
   test must (and does) run before it. *)

open Secmed_core
open Secmed_net
module Metrics = Secmed_obs.Metrics

let fast = { Env.group_bits = 160; paillier_bits = 384 }

let small_spec =
  {
    Workload.default with
    rows_left = 10;
    rows_right = 10;
    distinct_left = 5;
    distinct_right = 5;
    overlap = 3;
    extra_attrs = 1;
    seed = 11;
  }

let base_config =
  {
    Loadgen.default_config with
    Loadgen.workers = 8;
    sessions_per_worker = 2;
    domains = 1;
    seed = "serve-test";
  }

let scheme_sequences plans =
  List.map (fun worker -> List.map (fun p -> p.Loadgen.p_scheme) worker) plans

(* ------------------------------------------------------------------ *)
(* The plan is pure and replayable. *)

let test_plan_deterministic () =
  let p1 = Loadgen.plan base_config and p2 = Loadgen.plan base_config in
  Alcotest.(check bool) "same seed, same plan" true (p1 = p2);
  let other = Loadgen.plan { base_config with Loadgen.seed = "other" } in
  Alcotest.(check bool) "different seed, different draws" true
    (scheme_sequences p1 <> scheme_sequences other);
  List.iter
    (fun worker ->
      List.iter
        (fun p ->
          Alcotest.(check bool) "scheme from the mix" true
            (List.mem_assoc p.Loadgen.p_scheme base_config.Loadgen.mix))
        worker)
    p1

let test_plan_poisson_arrivals () =
  let config = { base_config with Loadgen.arrival = Loadgen.Poisson 50. } in
  let plans = Loadgen.plan config in
  List.iter
    (fun worker ->
      ignore
        (List.fold_left
           (fun prev p ->
             Alcotest.(check bool) "arrival times strictly increase" true
               (p.Loadgen.p_at > prev);
             p.Loadgen.p_at)
           (-1.) worker))
    plans;
  (* The scheme draws come from their own split: pacing does not change
     which schemes a worker poses. *)
  Alcotest.(check bool) "same schemes as closed loop" true
    (scheme_sequences plans = scheme_sequences (Loadgen.plan base_config))

(* ------------------------------------------------------------------ *)
(* The fleet against a live cluster. *)

let signature report =
  List.map
    (fun r -> (r.Loadgen.r_worker, r.Loadgen.r_index, r.Loadgen.r_scheme))
    report.Loadgen.records

(* CI smoke (8 workers x 2 sessions) doubling as the run-level
   determinism check: the same seed replays the identical per-worker
   scheme sequences, whatever the cluster's timing did. *)
let test_run_deterministic_smoke () =
  Loopback.with_cluster ~params:fast ~spec:small_spec ~max_sessions:8 @@ fun c ->
  let target = Loopback.target c in
  let r1 = Loadgen.run base_config target in
  let r2 = Loadgen.run base_config target in
  Alcotest.(check int) "all sessions accounted (run 1)" 16
    (List.length r1.Loadgen.records);
  Alcotest.(check bool) "same seed, same per-worker scheme sequences" true
    (signature r1 = signature r2);
  List.iter
    (fun r ->
      Alcotest.(check int) "nothing failed" 0 (Loadgen.count Loadgen.Failed r);
      Alcotest.(check int) "nothing unserved" 0 (Loadgen.count Loadgen.Unserved r);
      Alcotest.(check int) "nothing refused" 0 (Loadgen.count Loadgen.Refused r);
      Alcotest.(check int) "all served" 16
        (Loadgen.count Loadgen.Served r + Loadgen.count Loadgen.Degraded r);
      Alcotest.(check int) "latency histogram saw every session" 16
        (Metrics.histogram_count r.Loadgen.latency))
    [ r1; r2 ]

(* The acceptance bar: 64 concurrent-fleet sessions, every served one
   verified bit-for-bit (result relation, transcript messages, primitive
   counters) against the in-process reference execution. *)
let test_64_sessions_verified () =
  Loopback.with_cluster ~params:fast ~spec:small_spec ~max_sessions:8 @@ fun c ->
  let config =
    {
      base_config with
      Loadgen.workers = 8;
      sessions_per_worker = 8;
      seed = "verified-64";
      verify = true;
    }
  in
  let report = Loadgen.run config (Loopback.target c) in
  Alcotest.(check int) "64 sessions" 64 (List.length report.Loadgen.records);
  Alcotest.(check int) "zero refused" 0 (Loadgen.count Loadgen.Refused report);
  Alcotest.(check int) "zero unserved" 0 (Loadgen.count Loadgen.Unserved report);
  Alcotest.(check int) "zero failed" 0 (Loadgen.count Loadgen.Failed report);
  Alcotest.(check int) "all 64 served" 64 (Loadgen.count Loadgen.Served report);
  Alcotest.(check (list string)) "every session bit-identical to the reference" []
    report.Loadgen.verify_failures

let test_backpressure_counted_as_refused () =
  Loopback.with_cluster ~params:fast ~spec:small_spec ~max_sessions:0 @@ fun c ->
  let config = { base_config with Loadgen.workers = 4; sessions_per_worker = 2 } in
  let report = Loadgen.run config (Loopback.target c) in
  Alcotest.(check int) "every session typed Busy" 8
    (Loadgen.count Loadgen.Refused report);
  Alcotest.(check int) "none misfiled as failed" 0 (Loadgen.count Loadgen.Failed report);
  Alcotest.(check int) "none served" 0 (Loadgen.count Loadgen.Served report)

let test_poisson_open_loop_serves () =
  Loopback.with_cluster ~params:fast ~spec:small_spec ~max_sessions:8 @@ fun c ->
  let config =
    {
      base_config with
      Loadgen.workers = 2;
      sessions_per_worker = 2;
      arrival = Loadgen.Poisson 10.;
      seed = "poisson-run";
    }
  in
  let report = Loadgen.run config (Loopback.target c) in
  Alcotest.(check int) "all served" 4 (Loadgen.count Loadgen.Served report);
  Alcotest.(check bool) "throughput recorded" true (Loadgen.qps report > 0.)

(* ------------------------------------------------------------------ *)
(* Process death and graceful drain.  Still cluster-forking: these must
   also run before any domain is spawned. *)

(* The single in-process reference execution for a scheme, under the
   same fault plan the remote query carries (plan presence is
   protocol-visible: the commutative canary audit only runs when a plan
   is installed). *)
let reference_outcome c ~scheme ~fault_spec =
  let fault =
    if String.equal fault_spec "" then None
    else
      match Secmed_mediation.Fault.of_spec fault_spec with
      | Ok plan -> Some plan
      | Error msg -> Alcotest.fail msg
  in
  let sch =
    match Protocol.scheme_of_name scheme with
    | Some sch -> sch
    | None -> Alcotest.failf "unknown scheme %s" scheme
  in
  let outcome, _ =
    Secmed_crypto.Counters.with_fresh (fun () ->
        Protocol.run_exn ?fault sch (Loopback.env c) (Loopback.client_of c)
          ~query:(Loopback.canonical_query c))
  in
  outcome

let served_relation = function
  | Protocol.Served o -> Secmed_relalg.Relation.to_string o.Outcome.result
  | Protocol.Unserved _ -> Alcotest.fail "session unserved"

(* The survival tests need sessions that are slow in wall-clock terms,
   so a kill or drain deterministically lands mid-flight: with [fast]
   params, pm on the default 32x32 workload runs ~2s remotely, against
   ~0.2s on [small_spec]. *)
let slow_spec = Workload.default

(* SIGKILL the primary replica of source 1 while a session is mid-
   flight: the mediator fails over to the standby, reruns the session
   on a fresh epoch, and the served relation is byte-identical to the
   in-process reference.  The primary stays dead afterwards, so a
   second session pins the standby steady state too. *)
let test_failover_mid_session_bit_identical () =
  Loopback.with_cluster ~params:fast ~spec:slow_spec ~max_sessions:4 ~standbys:1
    ~health_interval:0.2 @@ fun c ->
  let scheme = "pm" and fault_spec = "retries=4" in
  let resp = ref None in
  let t =
    Thread.create (fun () -> resp := Some (Loopback.query c ~fault_spec ~scheme ())) ()
  in
  Thread.delay 0.5;
  Unix.kill (Loopback.source_pid c ~id:1 ~replica:0 ()) Sys.sigkill;
  Thread.join t;
  let response =
    match !resp with Some r -> r | None -> Alcotest.fail "query thread died"
  in
  let reference = reference_outcome c ~scheme ~fault_spec in
  Alcotest.(check string) "mid-session failover rerun is bit-identical"
    (Secmed_relalg.Relation.to_string reference.Outcome.result)
    (served_relation response.Peer.result);
  Alcotest.(check bool) "recovery took another protocol epoch" true
    (response.Peer.epochs >= 2);
  let again = Loopback.query c ~fault_spec ~scheme () in
  Alcotest.(check string) "standby serves the same bytes"
    (Secmed_relalg.Relation.to_string reference.Outcome.result)
    (served_relation again.Peer.result);
  Alcotest.(check int) "single epoch against the standby" 1 again.Peer.epochs

(* The authenticated drain frame: a wrong digest is refused and changes
   nothing; the right digest flips the mediator into draining, where a
   new session gets the typed [Draining] (never misfiled as [Busy]),
   the in-flight session still finishes, and the process exits 0. *)
let test_drain_typed_refusal_then_exit_zero () =
  Loopback.with_cluster ~params:fast ~spec:slow_spec ~max_sessions:4
    ~drain_deadline:8. @@ fun c ->
  (match
     Peer.drain ~host:"127.0.0.1" ~port:(Loopback.port c) ~scenario:"deadbeef" ()
   with
  | () -> Alcotest.fail "unauthenticated drain accepted"
  | exception Peer.Refused _ -> ());
  let probe = Loopback.query c ~scheme:"das" () in
  Alcotest.(check bool) "still serving after the refused drain" true
    (match probe.Peer.result with Protocol.Served _ -> true | _ -> false);
  let inflight = ref None in
  let t =
    Thread.create (fun () -> inflight := Some (Loopback.query c ~scheme:"pm" ())) ()
  in
  Thread.delay 0.3;
  Peer.drain ~host:"127.0.0.1" ~port:(Loopback.port c) ~scenario:(Loopback.scenario c)
    ();
  (match Loopback.query c ~scheme:"das" () with
  | _ -> Alcotest.fail "drained mediator admitted a new session"
  | exception Peer.Draining _ -> ()
  | exception Peer.Refused reason ->
    Alcotest.failf "drain misfiled as Busy: %s" reason);
  Thread.join t;
  let response =
    match !inflight with Some r -> r | None -> Alcotest.fail "in-flight thread died"
  in
  Alcotest.(check bool) "in-flight session finished under drain" true
    (match response.Peer.result with Protocol.Served _ -> true | _ -> false);
  let _, status = Unix.waitpid [] (Loopback.mediator_pid c) in
  Alcotest.(check bool) "drained mediator exits 0" true (status = Unix.WEXITED 0)

(* ------------------------------------------------------------------ *)
(* Domain-parallel mux consumers.  LAST: domains forbid later forks. *)

(* The seeded interleaving stress again, but with each session's
   consumer in its own OCaml domain: real parallelism on the shared
   queues, same invariant — no frame lost, duplicated, or
   cross-delivered. *)
let test_mux_domain_parallel_consumers () =
  let sessions = 4 and frames_per_session = 30 in
  let fd_a, fd_b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let a = Io.of_fd ~peer:"producer" fd_a in
  let b = Io.of_fd ~peer:"consumer" fd_b in
  Fun.protect ~finally:(fun () -> Io.close a; Io.close b) @@ fun () ->
  let mux = Endpoint.Mux.create b in
  let schedule =
    let all =
      Array.init (sessions * frames_per_session) (fun i ->
          ((i / frames_per_session) + 1, i mod frames_per_session))
    in
    Secmed_crypto.Prng.shuffle (Secmed_crypto.Prng.create ~seed:"mux-domains") all;
    all
  in
  List.iter (fun k -> Endpoint.Mux.subscribe mux (k + 1)) (List.init sessions Fun.id);
  let consumers =
    List.init sessions (fun k ->
        Domain.spawn (fun () ->
            let received = ref [] in
            (try
               for _ = 1 to frames_per_session do
                 match Endpoint.Mux.next mux ~session:(k + 1) ~timeout:10. with
                 | Frame.Msg { session; seq; _ } -> received := (session, seq) :: !received
                 | _ -> ()
               done
             with Io.Transport_error _ -> ());
            List.rev !received))
  in
  Array.iter
    (fun (session, seq) ->
      Io.send_frame a
        (Frame.encode
           (Frame.Msg
              {
                session;
                epoch = 1;
                seq;
                sender = Secmed_mediation.Transcript.Mediator;
                receiver = Secmed_mediation.Transcript.Source 1;
                label = Printf.sprintf "s%d-%d" session seq;
                declared = 2;
                payload = "xy";
              })))
    schedule;
  let results = List.map Domain.join consumers in
  List.iteri
    (fun k received ->
      let expected =
        Array.to_list schedule |> List.filter (fun (session, _) -> session = k + 1)
      in
      Alcotest.(check bool)
        (Printf.sprintf "domain consumer %d saw its wire subsequence" (k + 1))
        true (received = expected))
    results

let () =
  Alcotest.run "serve"
    [
      ( "plan",
        [
          Alcotest.test_case "deterministic and seed-sensitive" `Quick
            test_plan_deterministic;
          Alcotest.test_case "poisson arrivals well-formed" `Quick
            test_plan_poisson_arrivals;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "smoke run replays byte-identically" `Slow
            test_run_deterministic_smoke;
          Alcotest.test_case "64 sessions verified against reference" `Slow
            test_64_sessions_verified;
          Alcotest.test_case "backpressure counted as refused" `Quick
            test_backpressure_counted_as_refused;
          Alcotest.test_case "poisson open loop serves" `Slow
            test_poisson_open_loop_serves;
        ] );
      ( "survival",
        [
          Alcotest.test_case "mid-session failover is bit-identical" `Slow
            test_failover_mid_session_bit_identical;
          Alcotest.test_case "drain refuses typed, finishes in-flight, exits 0"
            `Slow test_drain_typed_refusal_then_exit_zero;
        ] );
      ( "domains",
        [
          Alcotest.test_case "mux consumers across domains" `Quick
            test_mux_domain_parallel_consumers;
        ] );
    ]

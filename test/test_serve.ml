(* Sustained-load serving: the deterministic loadgen fleet against a
   forked loopback cluster, plus the domain-level concurrency pieces it
   rides on.

   Ordering note: the final suite spawns OCaml domains, and Unix.fork
   is illegal once any domain has been spawned — every cluster-forking
   test must (and does) run before it. *)

open Secmed_core
open Secmed_net
module Metrics = Secmed_obs.Metrics

let fast = { Env.group_bits = 160; paillier_bits = 384 }

let small_spec =
  {
    Workload.default with
    rows_left = 10;
    rows_right = 10;
    distinct_left = 5;
    distinct_right = 5;
    overlap = 3;
    extra_attrs = 1;
    seed = 11;
  }

let base_config =
  {
    Loadgen.default_config with
    Loadgen.workers = 8;
    sessions_per_worker = 2;
    domains = 1;
    seed = "serve-test";
  }

let scheme_sequences plans =
  List.map (fun worker -> List.map (fun p -> p.Loadgen.p_scheme) worker) plans

(* ------------------------------------------------------------------ *)
(* The plan is pure and replayable. *)

let test_plan_deterministic () =
  let p1 = Loadgen.plan base_config and p2 = Loadgen.plan base_config in
  Alcotest.(check bool) "same seed, same plan" true (p1 = p2);
  let other = Loadgen.plan { base_config with Loadgen.seed = "other" } in
  Alcotest.(check bool) "different seed, different draws" true
    (scheme_sequences p1 <> scheme_sequences other);
  List.iter
    (fun worker ->
      List.iter
        (fun p ->
          Alcotest.(check bool) "scheme from the mix" true
            (List.mem_assoc p.Loadgen.p_scheme base_config.Loadgen.mix))
        worker)
    p1

let test_plan_poisson_arrivals () =
  let config = { base_config with Loadgen.arrival = Loadgen.Poisson 50. } in
  let plans = Loadgen.plan config in
  List.iter
    (fun worker ->
      ignore
        (List.fold_left
           (fun prev p ->
             Alcotest.(check bool) "arrival times strictly increase" true
               (p.Loadgen.p_at > prev);
             p.Loadgen.p_at)
           (-1.) worker))
    plans;
  (* The scheme draws come from their own split: pacing does not change
     which schemes a worker poses. *)
  Alcotest.(check bool) "same schemes as closed loop" true
    (scheme_sequences plans = scheme_sequences (Loadgen.plan base_config))

(* ------------------------------------------------------------------ *)
(* The fleet against a live cluster. *)

let signature report =
  List.map
    (fun r -> (r.Loadgen.r_worker, r.Loadgen.r_index, r.Loadgen.r_scheme))
    report.Loadgen.records

(* CI smoke (8 workers x 2 sessions) doubling as the run-level
   determinism check: the same seed replays the identical per-worker
   scheme sequences, whatever the cluster's timing did. *)
let test_run_deterministic_smoke () =
  Loopback.with_cluster ~params:fast ~spec:small_spec ~max_sessions:8 @@ fun c ->
  let target = Loopback.target c in
  let r1 = Loadgen.run base_config target in
  let r2 = Loadgen.run base_config target in
  Alcotest.(check int) "all sessions accounted (run 1)" 16
    (List.length r1.Loadgen.records);
  Alcotest.(check bool) "same seed, same per-worker scheme sequences" true
    (signature r1 = signature r2);
  List.iter
    (fun r ->
      Alcotest.(check int) "nothing failed" 0 (Loadgen.count Loadgen.Failed r);
      Alcotest.(check int) "nothing unserved" 0 (Loadgen.count Loadgen.Unserved r);
      Alcotest.(check int) "nothing refused" 0 (Loadgen.count Loadgen.Refused r);
      Alcotest.(check int) "all served" 16
        (Loadgen.count Loadgen.Served r + Loadgen.count Loadgen.Degraded r);
      Alcotest.(check int) "latency histogram saw every session" 16
        (Metrics.histogram_count r.Loadgen.latency))
    [ r1; r2 ]

(* The acceptance bar: 64 concurrent-fleet sessions, every served one
   verified bit-for-bit (result relation, transcript messages, primitive
   counters) against the in-process reference execution. *)
let test_64_sessions_verified () =
  Loopback.with_cluster ~params:fast ~spec:small_spec ~max_sessions:8 @@ fun c ->
  let config =
    {
      base_config with
      Loadgen.workers = 8;
      sessions_per_worker = 8;
      seed = "verified-64";
      verify = true;
    }
  in
  let report = Loadgen.run config (Loopback.target c) in
  Alcotest.(check int) "64 sessions" 64 (List.length report.Loadgen.records);
  Alcotest.(check int) "zero refused" 0 (Loadgen.count Loadgen.Refused report);
  Alcotest.(check int) "zero unserved" 0 (Loadgen.count Loadgen.Unserved report);
  Alcotest.(check int) "zero failed" 0 (Loadgen.count Loadgen.Failed report);
  Alcotest.(check int) "all 64 served" 64 (Loadgen.count Loadgen.Served report);
  Alcotest.(check (list string)) "every session bit-identical to the reference" []
    report.Loadgen.verify_failures

let test_backpressure_counted_as_refused () =
  Loopback.with_cluster ~params:fast ~spec:small_spec ~max_sessions:0 @@ fun c ->
  let config = { base_config with Loadgen.workers = 4; sessions_per_worker = 2 } in
  let report = Loadgen.run config (Loopback.target c) in
  Alcotest.(check int) "every session typed Busy" 8
    (Loadgen.count Loadgen.Refused report);
  Alcotest.(check int) "none misfiled as failed" 0 (Loadgen.count Loadgen.Failed report);
  Alcotest.(check int) "none served" 0 (Loadgen.count Loadgen.Served report)

let test_poisson_open_loop_serves () =
  Loopback.with_cluster ~params:fast ~spec:small_spec ~max_sessions:8 @@ fun c ->
  let config =
    {
      base_config with
      Loadgen.workers = 2;
      sessions_per_worker = 2;
      arrival = Loadgen.Poisson 10.;
      seed = "poisson-run";
    }
  in
  let report = Loadgen.run config (Loopback.target c) in
  Alcotest.(check int) "all served" 4 (Loadgen.count Loadgen.Served report);
  Alcotest.(check bool) "throughput recorded" true (Loadgen.qps report > 0.)

(* ------------------------------------------------------------------ *)
(* Domain-parallel mux consumers.  LAST: domains forbid later forks. *)

(* The seeded interleaving stress again, but with each session's
   consumer in its own OCaml domain: real parallelism on the shared
   queues, same invariant — no frame lost, duplicated, or
   cross-delivered. *)
let test_mux_domain_parallel_consumers () =
  let sessions = 4 and frames_per_session = 30 in
  let fd_a, fd_b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let a = Io.of_fd ~peer:"producer" fd_a in
  let b = Io.of_fd ~peer:"consumer" fd_b in
  Fun.protect ~finally:(fun () -> Io.close a; Io.close b) @@ fun () ->
  let mux = Endpoint.Mux.create b in
  let schedule =
    let all =
      Array.init (sessions * frames_per_session) (fun i ->
          ((i / frames_per_session) + 1, i mod frames_per_session))
    in
    Secmed_crypto.Prng.shuffle (Secmed_crypto.Prng.create ~seed:"mux-domains") all;
    all
  in
  List.iter (fun k -> Endpoint.Mux.subscribe mux (k + 1)) (List.init sessions Fun.id);
  let consumers =
    List.init sessions (fun k ->
        Domain.spawn (fun () ->
            let received = ref [] in
            (try
               for _ = 1 to frames_per_session do
                 match Endpoint.Mux.next mux ~session:(k + 1) ~timeout:10. with
                 | Frame.Msg { session; seq; _ } -> received := (session, seq) :: !received
                 | _ -> ()
               done
             with Io.Transport_error _ -> ());
            List.rev !received))
  in
  Array.iter
    (fun (session, seq) ->
      Io.send_frame a
        (Frame.encode
           (Frame.Msg
              {
                session;
                epoch = 1;
                seq;
                sender = Secmed_mediation.Transcript.Mediator;
                receiver = Secmed_mediation.Transcript.Source 1;
                label = Printf.sprintf "s%d-%d" session seq;
                declared = 2;
                payload = "xy";
              })))
    schedule;
  let results = List.map Domain.join consumers in
  List.iteri
    (fun k received ->
      let expected =
        Array.to_list schedule |> List.filter (fun (session, _) -> session = k + 1)
      in
      Alcotest.(check bool)
        (Printf.sprintf "domain consumer %d saw its wire subsequence" (k + 1))
        true (received = expected))
    results

let () =
  Alcotest.run "serve"
    [
      ( "plan",
        [
          Alcotest.test_case "deterministic and seed-sensitive" `Quick
            test_plan_deterministic;
          Alcotest.test_case "poisson arrivals well-formed" `Quick
            test_plan_poisson_arrivals;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "smoke run replays byte-identically" `Slow
            test_run_deterministic_smoke;
          Alcotest.test_case "64 sessions verified against reference" `Slow
            test_64_sessions_verified;
          Alcotest.test_case "backpressure counted as refused" `Quick
            test_backpressure_counted_as_refused;
          Alcotest.test_case "poisson open loop serves" `Slow
            test_poisson_open_loop_serves;
        ] );
      ( "domains",
        [
          Alcotest.test_case "mux consumers across domains" `Quick
            test_mux_domain_parallel_consumers;
        ] );
    ]

(* Sharded-datasource differential (DESIGN.md §16): a logical source
   split across k partitioned daemon processes must serve every scheme
   bit-identically to the single-source run — same result relation, same
   transcript, same counters.  The merge order is deterministic by
   construction (row index mod k), so nothing here is allowed to be
   "close": it is equality or a bug. *)

open Secmed_relalg
open Secmed_mediation
open Secmed_core
open Secmed_net

let fast = { Env.group_bits = 160; paillier_bits = 384 }

let small_spec =
  {
    Workload.default with
    rows_left = 10;
    rows_right = 10;
    distinct_left = 5;
    distinct_right = 5;
    overlap = 3;
    extra_attrs = 1;
  }

let schemes = [ "das"; "commutative"; "pm"; "plain"; "mobile-code" ]

let messages_of tr =
  List.map
    (fun (m : Transcript.message) -> (m.seq, m.sender, m.receiver, m.label, m.size))
    (Transcript.messages tr)

let test_sharded_differential () =
  Loopback.with_cluster ~params:fast ~spec:small_spec ~shards:4 @@ fun c ->
  List.iter
    (fun name ->
      let scheme = Option.get (Protocol.scheme_of_name name) in
      let reference =
        Protocol.run_exn scheme (Loopback.env c) (Loopback.client_of c)
          ~query:(Loopback.canonical_query c)
      in
      let response = Loopback.query c ~scheme:name () in
      let outcome =
        match response.Peer.result with
        | Protocol.Served o -> o
        | Protocol.Unserved tried ->
          Alcotest.failf "%s unserved: %a" name Protocol.pp_session_failures tried
      in
      Alcotest.(check int) (name ^ ": one attempt") 1 response.Peer.epochs;
      Alcotest.(check string)
        (name ^ ": sharded run bit-identical to single-source")
        (Relation.to_string reference.Outcome.result)
        (Relation.to_string outcome.Outcome.result);
      Alcotest.(check bool)
        (name ^ ": identical transcript messages") true
        (messages_of reference.Outcome.transcript = messages_of outcome.Outcome.transcript);
      Alcotest.(check int)
        (name ^ ": same byte total")
        (Transcript.total_bytes reference.Outcome.transcript)
        (Transcript.total_bytes outcome.Outcome.transcript);
      Alcotest.(check bool)
        (name ^ ": identical primitive counters") true
        (reference.Outcome.counters = outcome.Outcome.counters)
      (* Unlike the unsharded differential, per-link socket byte counts
         are NOT compared against the transcript here: a scalar frame to
         a sharded source is physically broadcast to all k shard
         processes, so the mediator honestly reports k x the logical
         link volume. *))
    schemes

(* Two shard layouts must agree with each other, not only with the
   in-process reference (k is a deployment knob, never a result knob). *)
let test_shard_counts_agree () =
  let run shards =
    Loopback.with_cluster ~params:fast ~spec:small_spec ~shards @@ fun c ->
    let response = Loopback.query c ~scheme:"das" () in
    match response.Peer.result with
    | Protocol.Served o -> Relation.to_string o.Outcome.result
    | Protocol.Unserved tried ->
      Alcotest.failf "das (k=%d) unserved: %a" shards Protocol.pp_session_failures tried
  in
  Alcotest.(check string) "k=2 equals k=3" (run 2) (run 3)

(* Every shard daemon is individually addressable and alive. *)
let test_shard_processes_forked () =
  Loopback.with_cluster ~params:fast ~spec:small_spec ~shards:3 @@ fun c ->
  List.iter
    (fun sid ->
      List.iter
        (fun shard ->
          let pid = Loopback.source_pid c ~shard ~id:sid ~replica:0 () in
          Alcotest.(check bool)
            (Printf.sprintf "source %d shard %d alive" sid shard)
            true
            (Unix.kill pid 0 = ()))
        [ 0; 1; 2 ])
    [ 1; 2 ];
  match Loopback.source_pid c ~shard:3 ~id:1 ~replica:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "an unknown shard must not resolve"

let () =
  Alcotest.run "shard"
    [
      ( "differential",
        [
          Alcotest.test_case "k=4: all schemes bit-identical" `Slow test_sharded_differential;
          Alcotest.test_case "shard counts agree among themselves" `Slow
            test_shard_counts_agree;
          Alcotest.test_case "shard processes forked and addressable" `Quick
            test_shard_processes_forked;
        ] );
    ]

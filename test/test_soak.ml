(* The chaos soak harness: the kill/drain schedule is a pure function
   of the config, and a short smoke soak must hold every robustness
   invariant end to end.  The soak forks a supervised cluster on entry,
   so this executable never spawns domains. *)

open Secmed_net

let fast_params = { Secmed_core.Env.group_bits = 160; paillier_bits = 384 }

(* The same shape `make check-soak` runs: small fleet, real kills, one
   drain-restart, verification on. *)
let smoke =
  {
    Soak.default_config with
    Soak.params = Some fast_params;
    workers = 2;
    sessions_per_worker = 3;
    kills = 2;
    drains = 1;
    rate = 6.;
    gap = 0.3;
    kill_hold = 0.5;
    seed = "soak-test";
  }

let test_schedule_deterministic () =
  let s1 = Soak.schedule smoke and s2 = Soak.schedule smoke in
  Alcotest.(check bool) "same config, same schedule" true (s1 = s2);
  let kills =
    List.filter (function Soak.Kill _ -> true | Soak.Drain_restart -> false) s1
  in
  Alcotest.(check int) "kills as configured" smoke.Soak.kills (List.length kills);
  Alcotest.(check int) "drains as configured" smoke.Soak.drains
    (List.length s1 - List.length kills);
  List.iter
    (function
      | Soak.Kill (sid, r) ->
        Alcotest.(check bool) "kill targets a live endpoint" true
          ((sid = 1 || sid = 2) && r >= 0 && r <= smoke.Soak.standbys)
      | Soak.Drain_restart -> ())
    s1;
  (* Reseeding shuffles the order but never the workload of actions. *)
  let reseeded = Soak.schedule { smoke with Soak.seed = "other-seed" } in
  Alcotest.(check int) "reseeding keeps the action count" (List.length s1)
    (List.length reseeded)

let test_smoke_soak_invariants () =
  let report = Soak.run smoke in
  Alcotest.(check (list string)) "every invariant holds" []
    report.Soak.sk_violations;
  Alcotest.(check bool) "report passes" true (Soak.ok report);
  let load = report.Soak.sk_load in
  Alcotest.(check int) "no session lost or duplicated"
    (smoke.Soak.workers * smoke.Soak.sessions_per_worker)
    (List.length load.Loadgen.records);
  Alcotest.(check int) "zero failed" 0 (Loadgen.count Loadgen.Failed load);
  Alcotest.(check int) "one drain-restart executed" 1
    (List.length report.Soak.sk_drain_exits);
  List.iter
    (fun code -> Alcotest.(check int) "drained mediator exited 0" 0 code)
    report.Soak.sk_drain_exits;
  Alcotest.(check int) "kills executed in schedule order" smoke.Soak.kills
    (List.length report.Soak.sk_kills);
  Alcotest.(check bool) "failover transitions recovered" true
    (report.Soak.sk_transitions <> [])

let () =
  Alcotest.run "soak"
    [
      ( "schedule",
        [
          Alcotest.test_case "deterministic and bounded" `Quick
            test_schedule_deterministic;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "smoke soak holds the invariants" `Slow
            test_smoke_soak_invariants;
        ] );
    ]

(* Streaming delivery suite (DESIGN.md §16): the chunk codec and
   planner, the tracked high-water allocator, the reusable reassembly
   buffer, the bounded mux queues, and — end to end over real sockets —
   the credit-flow-controlled send_rows/recv_rows pair, unsharded and
   sharded, with the merge verified bit for bit. *)

open Secmed_mediation
open Secmed_core
open Secmed_net
module Obs = Secmed_obs

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Hwm: the allocator the memory claims rest on. *)

let test_hwm_accounting () =
  Obs.Hwm.reset ();
  let r = Obs.Hwm.region "test.region" in
  Alcotest.(check bool) "interned" true (r == Obs.Hwm.region "test.region");
  Obs.Hwm.alloc r 100;
  Obs.Hwm.alloc r 50;
  Alcotest.(check int) "current tracks" 150 (Obs.Hwm.current r);
  Alcotest.(check int) "peak tracks" 150 (Obs.Hwm.peak r);
  Obs.Hwm.release r 120;
  Alcotest.(check int) "release lowers current" 30 (Obs.Hwm.current r);
  Alcotest.(check int) "peak is sticky" 150 (Obs.Hwm.peak r);
  Obs.Hwm.release r 1000;
  Alcotest.(check int) "double release clamps at zero" 0 (Obs.Hwm.current r);
  Obs.Hwm.alloc r 10;
  Alcotest.(check int) "peak survives the clamp" 150 (Obs.Hwm.peak r);
  Alcotest.(check bool) "global peak covers the region" true
    (Obs.Hwm.global_peak () >= 150);
  Alcotest.(check bool) "snapshot lists the region" true
    (contains (Obs.Json.to_string (Obs.Hwm.snapshot ())) "test.region");
  Obs.Hwm.reset ();
  Alcotest.(check int) "reset zeroes peak" 0 (Obs.Hwm.peak r)

(* ------------------------------------------------------------------ *)
(* Wire.Stream reserve/commit: reads land straight in the reassembly
   buffer; the frames must come out exactly as if fed whole. *)

let feed_via_reserve s blob =
  let n = String.length blob in
  if n > 0 then begin
    let buf, off = Wire.Stream.reserve s n in
    Bytes.blit_string blob 0 buf off n;
    Wire.Stream.commit s n
  end

let drain s =
  let rec go acc =
    match Wire.Stream.next_frame s with
    | Some body -> go (body :: acc)
    | None -> List.rev acc
  in
  go []

let test_reserve_commit_equals_feed () =
  let bodies = [ ""; "x"; String.init 5000 (fun i -> Char.chr (i mod 256)) ] in
  let whole = String.concat "" (List.map Wire.frame bodies) in
  for cut = 0 to String.length whole do
    let s = Wire.Stream.create () in
    feed_via_reserve s (String.sub whole 0 cut);
    feed_via_reserve s (String.sub whole cut (String.length whole - cut));
    Alcotest.(check (list string))
      (Printf.sprintf "reserve/commit split at %d" cut)
      bodies (drain s);
    Wire.Stream.dispose s;
    Wire.Stream.dispose s (* idempotent *)
  done

let test_reserve_commit_overrun_rejected () =
  let s = Wire.Stream.create () in
  let _buf, _off = Wire.Stream.reserve s 8 in
  match Wire.Stream.commit s 9000 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "committing past the reservation must be rejected"

(* A frame at exactly the cap passes; one byte more is Malformed. *)
let test_max_size_frame_boundary () =
  let cap = 4096 in
  let s = Wire.Stream.create ~max_frame:cap () in
  Wire.Stream.feed s (Wire.frame (String.make cap 'a'));
  (match Wire.Stream.next_frame s with
  | Some body -> Alcotest.(check int) "cap-sized frame accepted" cap (String.length body)
  | None -> Alcotest.fail "cap-sized frame must decode");
  Wire.Stream.feed s (Wire.frame (String.make (cap + 1) 'b'));
  match Wire.Stream.next_frame s with
  | exception Wire.Malformed _ -> ()
  | _ -> Alcotest.fail "a frame above max_frame must be rejected"

(* ------------------------------------------------------------------ *)
(* Chunk codec. *)

let entries_of rows = List.map (fun (r, b) -> { Stream.s_row = r; s_bytes = b }) rows

let test_entries_roundtrip () =
  let cases =
    [
      [];
      [ (0, "") ];
      [ (3, "abc"); (7, String.make 300 'z'); (12, "\x00\xff") ];
      List.init 100 (fun i -> (i * 5, Printf.sprintf "row-%d" i));
    ]
  in
  List.iter
    (fun rows ->
      let entries = entries_of rows in
      Alcotest.(check bool) "roundtrips" true
        (Stream.decode_entries (Stream.encode_entries entries) = entries))
    cases

let test_entries_reject_garbage () =
  let good = Stream.encode_entries (entries_of [ (1, "hello"); (2, "world") ]) in
  (* Truncation at every offset short of the full payload. *)
  for cut = 0 to String.length good - 1 do
    match Stream.decode_entries (String.sub good 0 cut) with
    | exception Wire.Malformed _ -> ()
    | _ -> Alcotest.failf "truncation at %d must be rejected" cut
  done;
  match Stream.decode_entries (good ^ "!") with
  | exception Wire.Malformed _ -> ()
  | _ -> Alcotest.fail "trailing bytes must be rejected"

let test_payload_row_bytes () =
  List.iter
    (fun rows ->
      let entries = entries_of rows in
      Alcotest.(check int) "peeked row bytes match"
        (Stream.total_bytes rows)
        (Stream.payload_row_bytes (Stream.encode_entries entries)))
    [ []; [ (0, "") ]; [ (1, "abcd") ]; List.init 50 (fun i -> (i, String.make i 'x')) ];
  Alcotest.(check int) "short payload reads zero" 0 (Stream.payload_row_bytes "ab")

let test_plan_properties () =
  let rows = List.init 500 (fun i -> (i, String.make (1 + (i * 7 mod 97)) 'r')) in
  let chunks = Stream.plan ~chunk_bytes:512 rows in
  Alcotest.(check bool) "concat of chunks is the rows in order" true
    (List.concat chunks = entries_of rows);
  List.iter
    (fun chunk ->
      let encoded = String.length (Stream.encode_entries chunk) in
      (* The 4-byte count prefix rides above the per-entry budget. *)
      if List.length chunk > 1 && encoded > 512 + 4 then
        Alcotest.failf "multi-entry chunk of %d encoded bytes exceeds the budget" encoded)
    chunks;
  (* An oversized single row still travels, alone. *)
  (match Stream.plan ~chunk_bytes:16 [ (0, String.make 4096 'x'); (1, "y") ] with
  | [ [ big ]; [ small ] ] ->
    Alcotest.(check int) "big row alone" 4096 (String.length big.Stream.s_bytes);
    Alcotest.(check string) "small row follows" "y" small.Stream.s_bytes
  | _ -> Alcotest.fail "oversized row must form a chunk of one");
  Alcotest.(check bool) "no rows, no chunks" true (Stream.plan [] = [])

let test_partition_properties () =
  let rows = List.init 103 (fun i -> (i, string_of_int i)) in
  let k = 4 in
  let parts = List.init k (fun shard -> Stream.partition ~k ~shard rows) in
  Alcotest.(check int) "partitions cover every row"
    (List.length rows)
    (List.fold_left (fun acc p -> acc + List.length p) 0 parts);
  List.iteri
    (fun shard part ->
      List.iter
        (fun (row, _) ->
          Alcotest.(check int) "row on its own shard" shard (Stream.shard_of_row ~k row))
        part;
      (* Order within a shard is the global order restricted to it. *)
      Alcotest.(check bool) "order preserved" true
        (part = List.filter (fun (row, _) -> row mod k = shard) rows))
    parts

(* ------------------------------------------------------------------ *)
(* Frame codec: chunk and credit frames, and the hostile-count cap. *)

let chunk ?(ck_chunk = 0) ?(ck_chunks = 3) ?(payload = "p") () =
  Frame.Msg_chunk
    { ck_session = 5; ck_epoch = 2; ck_seq = 9; ck_sender = Transcript.Source 1;
      ck_receiver = Transcript.Mediator; ck_label = "R1S+ITables"; ck_chunk; ck_chunks;
      ck_declared = 12345; ck_payload = payload }

let test_chunk_frame_roundtrip () =
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Frame.tag_name f ^ " roundtrips") true
        (Frame.decode (Frame.encode f) = f))
    [
      chunk ();
      chunk ~ck_chunk:2 ~ck_chunks:3 ~payload:(String.make 70000 'c') ();
      Frame.Credit { cr_session = 5; cr_epoch = 2; cr_seq = 9; cr_n = 1 };
      Frame.Credit { cr_session = 1; cr_epoch = 0; cr_seq = 0; cr_n = 64 };
    ]

let test_chunk_count_cap_hostile () =
  (* A declared chunk count past the cap, or a chunk index at/past the
     count, must die in the codec — not reach the receiver's merge. *)
  List.iter
    (fun f ->
      match Frame.decode (Frame.encode f) with
      | exception Wire.Malformed _ -> ()
      | _ -> Alcotest.fail "hostile chunk header must be rejected")
    [
      chunk ~ck_chunks:(Stream.max_chunks + 1) ();
      chunk ~ck_chunk:3 ~ck_chunks:3 ();
      chunk ~ck_chunk:(-1) ();
    ];
  (* The cap itself is legal. *)
  match Frame.decode (Frame.encode (chunk ~ck_chunk:0 ~ck_chunks:Stream.max_chunks ())) with
  | Frame.Msg_chunk { ck_chunks; _ } ->
    Alcotest.(check int) "cap accepted" Stream.max_chunks ck_chunks
  | _ -> Alcotest.fail "cap-count chunk must decode"

(* Chunk frames through the reassembly stream, split at every offset:
   the transport boundary must be invisible to the codec. *)
let test_chunk_frames_split_at_every_offset () =
  let frames =
    [
      chunk ~payload:(Stream.encode_entries (entries_of [ (0, "a"); (1, "bb") ])) ();
      Frame.Credit { cr_session = 5; cr_epoch = 2; cr_seq = 9; cr_n = 1 };
      chunk ~ck_chunk:1 ~payload:(Stream.encode_entries (entries_of [ (2, String.make 200 'q') ])) ();
    ]
  in
  let whole = String.concat "" (List.map (fun f -> Wire.frame (Frame.encode f)) frames) in
  for cut = 0 to String.length whole do
    let s = Wire.Stream.create () in
    Wire.Stream.feed s (String.sub whole 0 cut);
    Wire.Stream.feed s (String.sub whole cut (String.length whole - cut));
    Alcotest.(check bool)
      (Printf.sprintf "chunk frames split at %d" cut)
      true
      (List.map Frame.decode (drain s) = frames)
  done

(* ------------------------------------------------------------------ *)
(* Mux overflow: a flooded session queue is dropped and poisoned, not
   grown without bound. *)

let socket_pair () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (Io.of_fd ~peer:"a" a, Io.of_fd ~peer:"b" b)

let msg ~seq =
  Frame.Msg
    { session = 1; epoch = 1; seq; sender = Transcript.Mediator;
      receiver = Transcript.Source 1; label = "flood"; declared = 2; payload = "xy" }

let mux_sync a mux =
  Io.send_frame a (Frame.encode (Frame.Busy "sync"));
  match Endpoint.Mux.next_control mux ~timeout:5. with
  | Frame.Busy "sync" -> ()
  | f -> Alcotest.fail ("expected sync marker, got " ^ Frame.tag_name f)

let test_mux_queue_overflow_poisons_session () =
  let a, b = socket_pair () in
  Fun.protect ~finally:(fun () -> Io.close a; Io.close b) @@ fun () ->
  let mux = Endpoint.Mux.create ~max_queue:4 b in
  Endpoint.Mux.subscribe mux 1;
  for seq = 0 to 9 do
    Io.send_frame a (Frame.encode (msg ~seq))
  done;
  mux_sync a mux;
  Alcotest.(check bool) "session marked overflowed" true (Endpoint.Mux.overflowed mux 1);
  Alcotest.(check int) "excess frames dropped" 6 (Endpoint.Mux.dropped mux);
  Alcotest.(check int) "backlog capped at the bound" 4 (Endpoint.Mux.backlog mux);
  (match Endpoint.Mux.next mux ~session:1 ~timeout:5. with
  | exception Io.Transport_error m ->
    Alcotest.(check bool) "typed overflow failure" true (contains m "overflow")
  | _ -> Alcotest.fail "an overflowed session must fail typed");
  (* Resubscribing (an epoch-bumped reuse) clears the poisoning; the
     frames parked before the overflow stay queued — in production the
     transport's epoch filter discards them. *)
  Endpoint.Mux.subscribe mux 1;
  Alcotest.(check bool) "resubscribe clears overflow" false (Endpoint.Mux.overflowed mux 1);
  Io.send_frame a (Frame.encode (msg ~seq:99));
  let rec next_fresh () =
    match Endpoint.Mux.next mux ~session:1 ~timeout:5. with
    | Frame.Msg { seq = 99; _ } -> ()
    | Frame.Msg { seq; _ } when seq < 4 -> next_fresh () (* parked pre-overflow *)
    | f -> Alcotest.fail ("expected the fresh frame, got " ^ Frame.tag_name f)
  in
  next_fresh ()

(* ------------------------------------------------------------------ *)
(* send_rows/recv_rows end to end over sockets, with real credits. *)

let make_leg () =
  (* One leg: a mux on each end of a socketpair, both subscribed to the
     test session. *)
  let a, b = socket_pair () in
  let ma = Endpoint.Mux.create a and mb = Endpoint.Mux.create b in
  Endpoint.Mux.subscribe ma 7;
  Endpoint.Mux.subscribe mb 7;
  let route m =
    Endpoint.plain_route
      ~send:(Endpoint.Mux.send m)
      ~next:(fun ~timeout -> Endpoint.Mux.next m ~session:7 ~timeout)
  in
  ((a, b), route ma, route mb)

let transport_for ~role ~shard ~counterpart route =
  Endpoint.transport ~role ~session:7 ~epoch:(fun () -> 1) ~io_timeout:10.
    ~route_of:(fun p -> if Transcript.party_equal p counterpart then Some route else None)
    ~shard ()

let rows_fixture n =
  (* Enough bytes that the default 64 KiB chunking needs > credit_window
     chunks: the sender must block on and consume real Credit grants. *)
  List.init n (fun i -> (i, String.init 1024 (fun j -> Char.chr ((i + j) mod 256))))

let stream_of tr = Option.get tr.Link.rows

let test_send_recv_rows_roundtrip () =
  Obs.Hwm.reset ();
  let (ca, cb), sender_route, receiver_route = make_leg () in
  Fun.protect ~finally:(fun () -> Io.close ca; Io.close cb) @@ fun () ->
  let rows = rows_fixture 700 in
  let size = Stream.total_bytes rows in
  let sender =
    transport_for ~role:(Transcript.Source 1) ~shard:(0, 1) ~counterpart:Transcript.Mediator
      sender_route
  in
  let receiver =
    transport_for ~role:Transcript.Mediator ~shard:(0, 1) ~counterpart:(Transcript.Source 1)
      receiver_route
  in
  let sender_err = ref None in
  let t =
    Thread.create
      (fun () ->
        try
          (stream_of sender).Link.send_rows ~phase:"t" ~seq:0 ~sender:(Transcript.Source 1)
            ~receiver:Transcript.Mediator ~label:"L" ~size rows
        with e -> sender_err := Some e)
      ()
  in
  (stream_of receiver).Link.recv_rows ~phase:"t" ~seq:0 ~sender:(Transcript.Source 1)
    ~receiver:Transcript.Mediator ~label:"L" ~size ~expect:rows;
  Thread.join t;
  (match !sender_err with
  | Some e -> Alcotest.fail ("sender raised: " ^ Printexc.to_string e)
  | None -> ());
  Alcotest.(check int) "no stream backlog after completion" 0 (Endpoint.stream_backlog ());
  (* The receiver held at most ~one decoded chunk: far below the
     relation (700 KiB), within one chunk plus one max-sized row. *)
  let pending_peak = Obs.Hwm.peak (Obs.Hwm.region "stream.pending") in
  Alcotest.(check bool)
    (Printf.sprintf "merge window bounded (peak %d)" pending_peak)
    true
    (pending_peak > 0 && pending_peak <= Stream.default_chunk_bytes + 1024)

let test_recv_rows_detects_mismatch () =
  let (ca, cb), sender_route, receiver_route = make_leg () in
  Fun.protect ~finally:(fun () -> Io.close ca; Io.close cb) @@ fun () ->
  let rows = rows_fixture 20 in
  let size = Stream.total_bytes rows in
  let tampered =
    List.map (fun (i, b) -> if i = 13 then (i, "not the canonical bytes") else (i, b)) rows
  in
  let sender =
    transport_for ~role:(Transcript.Source 1) ~shard:(0, 1) ~counterpart:Transcript.Mediator
      sender_route
  in
  let receiver =
    transport_for ~role:Transcript.Mediator ~shard:(0, 1) ~counterpart:(Transcript.Source 1)
      receiver_route
  in
  let t =
    Thread.create
      (fun () ->
        try
          (stream_of sender).Link.send_rows ~phase:"t" ~seq:0 ~sender:(Transcript.Source 1)
            ~receiver:Transcript.Mediator ~label:"L" ~size tampered
        with _ -> ())
      ()
  in
  (match
     (stream_of receiver).Link.recv_rows ~phase:"t" ~seq:0 ~sender:(Transcript.Source 1)
       ~receiver:Transcript.Mediator ~label:"L" ~size ~expect:rows
   with
  | exception Fault.Fault_detected f ->
    Alcotest.(check bool) "blames the stream row" true (contains f.Fault.reason "stream row 13")
  | () -> Alcotest.fail "a tampered row must be detected");
  Thread.join t

let test_sharded_merge_bit_identical () =
  Obs.Hwm.reset ();
  let k = 2 in
  let (ca, cb), s0_route, r0_route = make_leg () in
  let (da, db), s1_route, r1_route = make_leg () in
  Fun.protect
    ~finally:(fun () -> List.iter Io.close [ ca; cb; da; db ])
  @@ fun () ->
  let rows = rows_fixture 301 in
  let size = Stream.total_bytes rows in
  let send_via shard route =
    let tr =
      transport_for ~role:(Transcript.Source 1) ~shard:(shard, k)
        ~counterpart:Transcript.Mediator route
    in
    Thread.create
      (fun () ->
        (stream_of tr).Link.send_rows ~phase:"t" ~seq:0 ~sender:(Transcript.Source 1)
          ~receiver:Transcript.Mediator ~label:"L" ~size rows)
      ()
  in
  let t0 = send_via 0 s0_route and t1 = send_via 1 s1_route in
  (* The mediator's merged view of the sharded source. *)
  let merged =
    {
      Endpoint.r_send =
        (fun f ->
          r0_route.Endpoint.r_send f;
          r1_route.Endpoint.r_send f);
      r_next = r0_route.Endpoint.r_next;
      r_sub = Some [| r0_route; r1_route |];
    }
  in
  let receiver =
    transport_for ~role:Transcript.Mediator ~shard:(0, 1) ~counterpart:(Transcript.Source 1)
      merged
  in
  (stream_of receiver).Link.recv_rows ~phase:"t" ~seq:0 ~sender:(Transcript.Source 1)
    ~receiver:Transcript.Mediator ~label:"L" ~size ~expect:rows;
  Thread.join t0;
  Thread.join t1;
  Alcotest.(check int) "no stream backlog after sharded merge" 0
    (Endpoint.stream_backlog ());
  (* Merge window: bounded by one chunk per shard. *)
  let pending_peak = Obs.Hwm.peak (Obs.Hwm.region "stream.pending") in
  Alcotest.(check bool)
    (Printf.sprintf "merge window bounded by k chunks (peak %d)" pending_peak)
    true
    (pending_peak <= k * (Stream.default_chunk_bytes + 1024))

(* A non-designated shard must not speak scalar messages: its sends
   vanish, only its streamed partition crosses the wire. *)
let test_shard_scalar_speaker_suppression () =
  let sent = ref [] in
  let route =
    Endpoint.plain_route
      ~send:(fun f -> sent := f :: !sent)
      ~next:(fun ~timeout:_ -> Alcotest.fail "nothing should be awaited")
  in
  let tr =
    transport_for ~role:(Transcript.Source 1) ~shard:(1, 2) ~counterpart:Transcript.Mediator
      route
  in
  tr.Link.send ~phase:"t" ~seq:0 ~sender:(Transcript.Source 1) ~receiver:Transcript.Mediator
    ~label:"scalar" ~size:2 "xy";
  Alcotest.(check int) "shard 1 suppresses scalar sends" 0 (List.length !sent);
  (* Streamed sends carry only the shard's partition (no credits needed
     below one window's worth of chunks). *)
  let rows = List.init 10 (fun i -> (i, Printf.sprintf "row%d" i)) in
  (stream_of tr).Link.send_rows ~phase:"t" ~seq:1 ~sender:(Transcript.Source 1)
    ~receiver:Transcript.Mediator ~label:"L" ~size:(Stream.total_bytes rows) rows;
  let streamed =
    List.concat_map
      (function
        | Frame.Msg_chunk m -> Stream.decode_entries m.Frame.ck_payload
        | f -> Alcotest.fail ("unexpected frame " ^ Frame.tag_name f))
      (List.rev !sent)
  in
  Alcotest.(check bool) "only the odd rows crossed" true
    (List.map (fun e -> e.Stream.s_row) streamed = [ 1; 3; 5; 7; 9 ])

(* ------------------------------------------------------------------ *)
(* Shard addressing. *)

let test_shard_digest () =
  Alcotest.(check string) "k=1 is the base digest" "base" (Shard.digest "base" ~shard:(0, 1));
  let d0 = Shard.digest "base" ~shard:(0, 4) and d1 = Shard.digest "base" ~shard:(1, 4) in
  Alcotest.(check bool) "shards get distinct digests" true
    (d0 <> d1 && d0 <> "base" && d1 <> "base");
  Alcotest.(check string) "deterministic" d0 (Shard.digest "base" ~shard:(0, 4));
  (match Shard.digest "base" ~shard:(4, 4) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range shard must be rejected")

let test_shard_parsers () =
  (match Shard.parse_source "2=shard@h1:70,h2:71;shard@h3:72" with
  | Ok (2, [ [ ("h1", 70); ("h2", 71) ]; [ ("h3", 72) ] ]) -> ()
  | Ok _ -> Alcotest.fail "mis-parsed sharded source"
  | Error e -> Alcotest.fail e);
  (match Shard.parse_source "1=localhost:9000" with
  | Ok (1, [ [ ("localhost", 9000) ] ]) -> ()
  | _ -> Alcotest.fail "unsharded source must parse as one shard");
  (match Shard.parse_source "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not parse");
  (match Shard.parse_shard_flag "2/4" with
  | Ok (2, 4) -> ()
  | _ -> Alcotest.fail "shard flag must parse");
  match Shard.parse_shard_flag "4/4" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range shard flag must be rejected"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "stream"
    [
      ( "hwm",
        [ Alcotest.test_case "tracked high-water accounting" `Quick test_hwm_accounting ] );
      ( "reassembly",
        [
          Alcotest.test_case "reserve/commit equals feed at every split" `Quick
            test_reserve_commit_equals_feed;
          Alcotest.test_case "commit overrun rejected" `Quick
            test_reserve_commit_overrun_rejected;
          Alcotest.test_case "max-size frame boundary" `Quick test_max_size_frame_boundary;
        ] );
      ( "chunk-codec",
        [
          Alcotest.test_case "entries roundtrip" `Quick test_entries_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_entries_reject_garbage;
          Alcotest.test_case "payload row bytes peeked" `Quick test_payload_row_bytes;
          Alcotest.test_case "plan bounds chunks" `Quick test_plan_properties;
          Alcotest.test_case "partition covers and preserves order" `Quick
            test_partition_properties;
          Alcotest.test_case "chunk/credit frames roundtrip" `Quick test_chunk_frame_roundtrip;
          Alcotest.test_case "hostile chunk count capped" `Quick test_chunk_count_cap_hostile;
          Alcotest.test_case "chunk frames split at every offset" `Quick
            test_chunk_frames_split_at_every_offset;
        ] );
      ( "mux",
        [
          Alcotest.test_case "queue overflow poisons the session" `Quick
            test_mux_queue_overflow_poisons_session;
        ] );
      ( "streamed-transport",
        [
          Alcotest.test_case "roundtrip with credit flow" `Slow test_send_recv_rows_roundtrip;
          Alcotest.test_case "tampered row detected" `Slow test_recv_rows_detects_mismatch;
          Alcotest.test_case "sharded merge bit-identical" `Slow
            test_sharded_merge_bit_identical;
          Alcotest.test_case "non-designated shard speaks no scalars" `Quick
            test_shard_scalar_speaker_suppression;
        ] );
      ( "shard-addressing",
        [
          Alcotest.test_case "per-shard digest" `Quick test_shard_digest;
          Alcotest.test_case "address parsers" `Quick test_shard_parsers;
        ] );
    ]

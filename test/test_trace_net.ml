(* Distributed tracing and the live ops surface (DESIGN.md §14): the
   Trace_wire codec round-trips a collector bit for bit; a forked
   loopback cluster queried with [trace] yields one merged multi-process
   trace whose per-process phase structure is identical to the
   in-process reference run (every process is a full replica, so every
   process traces the same driver), with every source span rooted under
   the mediator's session span; and a loaded mediator's [Stats] snapshot
   reports real scheduler, pool, and per-scheme latency numbers. *)

open Secmed_mediation
open Secmed_core
open Secmed_net
module Obs = Secmed_obs
module Trace = Obs.Trace
module Json = Obs.Json

let fast = { Env.group_bits = 160; paillier_bits = 384 }

let small_spec =
  {
    Workload.default with
    rows_left = 10;
    rows_right = 10;
    distinct_left = 5;
    distinct_right = 5;
    overlap = 3;
    extra_attrs = 1;
  }

let schemes = [ "das"; "commutative"; "pm"; "plain"; "mobile-code" ]

(* ------------------------------------------------------------------ *)
(* Trace_wire: the codec. *)

let sample_collector () =
  let (), t =
    Trace.collect (fun () ->
        Trace.with_span ~kind:Trace.Protocol "root" (fun () ->
            Trace.with_span ~kind:Trace.Phase
              ~attrs:[ ("party", Json.Str "Source 1"); ("n", Json.Int 3) ]
              "phase"
              (fun () -> Trace.event "message" ~attrs:[ ("bytes", Json.Int 9) ]);
            Trace.with_span ~kind:Trace.Operation "op" (fun () -> ())))
  in
  t

let test_payload_roundtrip () =
  let t = sample_collector () in
  let epoch, spans, events = Trace_wire.decode (Trace_wire.payload_of t) in
  Alcotest.(check int64) "epoch survives" (Trace.epoch_ns t) epoch;
  let originals = Trace.spans t in
  Alcotest.(check int) "span count" (List.length originals) (List.length spans);
  List.iter2
    (fun (a : Trace.span) (b : Trace.span) ->
      Alcotest.(check int) "id" a.Trace.id b.Trace.id;
      Alcotest.(check (option int)) "parent" a.Trace.parent b.Trace.parent;
      Alcotest.(check string) "name" a.Trace.name b.Trace.name;
      Alcotest.(check string) "kind" (Trace.kind_name a.Trace.kind)
        (Trace.kind_name b.Trace.kind);
      Alcotest.(check int64) "start" a.Trace.start_ns b.Trace.start_ns;
      Alcotest.(check int64) "stop" a.Trace.stop_ns b.Trace.stop_ns;
      Alcotest.(check bool) "attrs" true (Trace.attrs a = Trace.attrs b))
    originals spans;
  let ev_originals = Trace.events t in
  Alcotest.(check int) "event count" (List.length ev_originals) (List.length events);
  List.iter2
    (fun (a : Trace.event) (b : Trace.event) ->
      Alcotest.(check string) "ev name" a.Trace.ev_name b.Trace.ev_name;
      Alcotest.(check (option int)) "ev span" a.Trace.ev_span b.Trace.ev_span;
      Alcotest.(check int64) "ev at" a.Trace.ev_ns b.Trace.ev_ns;
      Alcotest.(check bool) "ev attrs" true (a.Trace.ev_attrs = b.Trace.ev_attrs))
    ev_originals events

let test_payload_malformed () =
  List.iter
    (fun s ->
      match Trace_wire.decode s with
      | _ -> Alcotest.failf "accepted malformed payload %S" s
      | exception Wire.Malformed _ -> ())
    [ ""; "x"; String.make 5 '\255' ]

(* ------------------------------------------------------------------ *)
(* The merged distributed trace, differentially against in-process. *)

(* The (name, party) multiset of Phase spans — the shape the replica
   model pins: every process runs the whole driver, so every process's
   phase structure must equal the single in-process run's. *)
let phases spans =
  List.filter_map
    (fun s ->
      if s.Trace.kind = Trace.Phase then
        Some
          ( s.Trace.name,
            match Trace.find_attr s "party" with
            | Some (Json.Str p) -> p
            | _ -> "" )
      else None)
    spans
  |> List.sort compare

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let test_distributed_trace_differential () =
  Loopback.with_cluster ~params:fast ~spec:small_spec @@ fun c ->
  List.iter
    (fun name ->
      let scheme = Option.get (Protocol.scheme_of_name name) in
      let _reference, ref_trace =
        Trace.collect (fun () ->
            Protocol.run_exn scheme (Loopback.env c) (Loopback.client_of c)
              ~query:(Loopback.canonical_query c))
      in
      let reference_phases = phases (Trace.spans ref_trace) in
      Alcotest.(check bool) (name ^ ": reference has phases") true
        (reference_phases <> []);
      let response, client_trace =
        Trace.collect (fun () -> Loopback.query c ~trace:true ~scheme:name ())
      in
      (match response.Peer.result with
      | Protocol.Served _ -> ()
      | Protocol.Unserved tried ->
        Alcotest.failf "%s unserved: %a" name Protocol.pp_session_failures tried);
      Alcotest.(check bool) (name ^ ": span batches arrived") true
        (response.Peer.remote_spans <> []);
      let processes = Trace_wire.merge ~client:client_trace response.Peer.remote_spans in
      Alcotest.(check bool)
        (name ^ ": at least client+mediator+source lanes") true
        (List.length processes >= 3);
      (* Rebased ids are globally unique across every lane. *)
      let all_spans = List.concat_map (fun p -> p.Obs.Export.pr_spans) processes in
      let ids = List.map (fun s -> s.Trace.id) all_spans in
      Alcotest.(check int) (name ^ ": globally unique span ids") (List.length ids)
        (List.length (List.sort_uniq compare ids));
      (* The mediator lane carries the session root... *)
      let mediator =
        match List.find_opt (fun p -> p.Obs.Export.pr_name = "mediator") processes with
        | Some p -> p
        | None -> Alcotest.failf "%s: no mediator lane" name
      in
      let session =
        match
          List.find_opt
            (fun s -> s.Trace.name = "session" && s.Trace.kind = Trace.Protocol)
            mediator.Obs.Export.pr_spans
        with
        | Some s -> s
        | None -> Alcotest.failf "%s: mediator lane has no session span" name
      in
      (* ...and every source lane's roots hang under it. *)
      let source_lanes =
        List.filter (fun p -> starts_with ~prefix:"source" p.Obs.Export.pr_name) processes
      in
      Alcotest.(check int) (name ^ ": both sources shipped spans") 2
        (List.length source_lanes);
      List.iter
        (fun p ->
          let own = Hashtbl.create 64 in
          List.iter (fun s -> Hashtbl.replace own s.Trace.id ()) p.Obs.Export.pr_spans;
          let roots =
            List.filter
              (fun s ->
                match s.Trace.parent with
                | None -> true
                | Some parent -> not (Hashtbl.mem own parent))
              p.Obs.Export.pr_spans
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s has roots" name p.Obs.Export.pr_name)
            true (roots <> []);
          List.iter
            (fun s ->
              Alcotest.(check (option int))
                (Printf.sprintf "%s: %s root under the mediator session" name
                   p.Obs.Export.pr_name)
                (Some session.Trace.id) s.Trace.parent)
            roots)
        source_lanes;
      (* Every process traced the same driver: phase structure matches
         the in-process reference, lane by lane. *)
      List.iter
        (fun p ->
          Alcotest.(check (list (pair string string)))
            (Printf.sprintf "%s: %s phase structure" name p.Obs.Export.pr_name)
            reference_phases (phases p.Obs.Export.pr_spans))
        processes;
      (* And the merged artifact is one well-formed Chrome trace. *)
      match Json.parse (Obs.Export.chrome_json_processes processes) with
      | Ok (Json.List entries) ->
        Alcotest.(check bool) (name ^ ": merged chrome trace non-empty") true
          (entries <> [])
      | Ok _ -> Alcotest.failf "%s: merged chrome trace is not an array" name
      | Error e -> Alcotest.failf "%s: merged chrome trace does not parse: %s" name e)
    schemes

(* ------------------------------------------------------------------ *)
(* The stats surface of a loaded server. *)

let test_stats_surface () =
  Loopback.with_cluster ~params:fast ~spec:small_spec ~max_sessions:8 ~workers:4
  @@ fun c ->
  let config =
    {
      Loadgen.default_config with
      workers = 4;
      sessions_per_worker = 2;
      domains = 1;
      seed = "stats-surface";
    }
  in
  let report = Loadgen.run config (Loopback.target c) in
  let served = Loadgen.count Loadgen.Served report in
  Alcotest.(check bool) "burst mostly served" true (served > 0);
  (* The session reply is sent from inside the worker thunk, so the
     fleet can observe its last verdict a moment before the scheduler
     books the completion — poll until the counters settle. *)
  let completed json =
    match Option.bind (Json.member "scheduler" json) (Json.member "completed") with
    | Some (Json.Int n) -> n
    | _ -> 0
  in
  let rec fetch attempts =
    let payload = Peer.stats ~host:"127.0.0.1" ~port:(Loopback.port c) () in
    match Json.parse payload with
    | Error e -> Alcotest.failf "stats payload does not parse: %s" e
    | Ok json ->
      if completed json >= 8 || attempts <= 0 then json
      else begin
        Thread.delay 0.05;
        fetch (attempts - 1)
      end
  in
  match fetch 40 with
  | json ->
    let section name =
      match Json.member name json with
      | Some v -> v
      | None -> Alcotest.failf "stats: missing section %S" name
    in
    let num ctx v =
      match v with
      | Some (Json.Float f) -> f
      | Some (Json.Int i) -> float_of_int i
      | _ -> Alcotest.failf "stats: %s is not a number" ctx
    in
    let field ctx obj key = num (ctx ^ "." ^ key) (Json.member key obj) in
    Alcotest.(check bool) "uptime positive" true
      (num "uptime_seconds" (Json.member "uptime_seconds" json) > 0.);
    let sessions = section "sessions" in
    Alcotest.(check bool) "admitted the burst" true
      (field "sessions" sessions "admitted" >= 8.);
    let sched = section "scheduler" in
    Alcotest.(check bool) "workers reported" true (field "scheduler" sched "workers" = 4.);
    Alcotest.(check bool) "completed the burst" true
      (field "scheduler" sched "completed" >= 8.);
    Alcotest.(check bool) "busy_seconds accumulated" true
      (field "scheduler" sched "busy_seconds" > 0.);
    Alcotest.(check bool) "utilization sane" true
      (let u = field "scheduler" sched "utilization" in
       u >= 0. && u <= 1.);
    (match section "pool" with
    | Json.List (_ :: _ as sources) ->
      List.iter
        (fun src ->
          match Json.member "slots" src with
          | Some (Json.List (_ :: _ as slots)) ->
            Alcotest.(check bool) "a slot dialed" true
              (List.exists (fun slot -> field "pool.slot" slot "dials" > 0.) slots)
          | _ -> Alcotest.fail "stats: pool source without slots")
        sources
    | _ -> Alcotest.fail "stats: pool is not a non-empty list");
    let net = section "net" in
    Alcotest.(check bool) "net bytes counted" true
      (field "net" net "bytes_sent" > 0. && field "net" net "bytes_recv" > 0.);
    (match section "schemes" with
    | Json.Obj (_ :: _ as per_scheme) ->
      let total_served =
        List.fold_left
          (fun acc (_, st) -> acc +. field "schemes" st "served")
          0. per_scheme
      in
      Alcotest.(check bool) "per-scheme served counts" true
        (total_served >= float_of_int served);
      List.iter
        (fun (scheme, st) ->
          match Json.member "latency_seconds" st with
          | Some lat ->
            Alcotest.(check bool) (scheme ^ ": latency percentiles") true
              (field scheme lat "count" > 0.
              && field scheme lat "p50" > 0.
              && field scheme lat "p99" >= field scheme lat "p50")
          | None -> Alcotest.failf "stats: scheme %s without latency" scheme)
        per_scheme
    | _ -> Alcotest.fail "stats: no per-scheme entries after a served burst")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "trace_net"
    [
      ( "trace_wire",
        [
          Alcotest.test_case "payload roundtrip" `Quick test_payload_roundtrip;
          Alcotest.test_case "malformed payloads" `Quick test_payload_malformed;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "merged trace differential" `Slow
            test_distributed_trace_differential;
          Alcotest.test_case "stats surface" `Slow test_stats_surface;
        ] );
    ]
